package comm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// downTransport always fails, counting the attempts it swallowed.
type downTransport struct{ calls int }

func (d *downTransport) Name() string           { return "down" }
func (d *downTransport) CopiesPerTransfer() int { return 1 }
func (d *downTransport) Pull(dst, src []float32, x Xfer) (TransferStats, error) {
	d.calls++
	return TransferStats{}, errors.New("link down")
}
func (d *downTransport) Push(dst, src []float32, x Xfer) (TransferStats, error) {
	d.calls++
	return TransferStats{}, errors.New("link down")
}

func faultPayload(n int) ([]float32, []float32) {
	src := make([]float32, n)
	dst := make([]float32, n)
	for i := range src {
		src[i] = float32(i) + 0.25
	}
	return dst, src
}

func TestFaultSpecNormalized(t *testing.T) {
	// The documented default: an active Delay with no duration means 1ms.
	got := FaultSpec{Delay: 0.5}.Normalized()
	if got.DelayFor != time.Millisecond {
		t.Fatalf("DelayFor = %v, want the 1ms default", got.DelayFor)
	}
	// An explicit duration survives.
	got = FaultSpec{Delay: 0.5, DelayFor: 7 * time.Millisecond}.Normalized()
	if got.DelayFor != 7*time.Millisecond {
		t.Fatalf("DelayFor = %v, want the explicit 7ms", got.DelayFor)
	}
	// No delay injection, no default: the spec stays zero so comparisons
	// against the zero spec keep working.
	got = FaultSpec{Transient: 0.1}.Normalized()
	if got.DelayFor != 0 {
		t.Fatalf("DelayFor = %v for Delay = 0, want 0", got.DelayFor)
	}
}

func TestFaultSpecNormalizedMatchesConstruction(t *testing.T) {
	// The schedule a decorated transport runs is the one the normalized
	// spec describes: NewFaulty must not apply any further defaults.
	spec := FaultSpec{Delay: 1, Seed: 5}
	f := mustNewFaulty(t, shared(1), spec)
	if f.spec.DelayFor != spec.Normalized().DelayFor {
		t.Fatalf("constructed DelayFor %v != normalized %v", f.spec.DelayFor, spec.Normalized().DelayFor)
	}
}

func TestFaultyPassthroughWhenInactive(t *testing.T) {
	f := mustNewFaulty(t, shared(1), FaultSpec{Seed: 1})
	if (FaultSpec{}).Active() {
		t.Fatal("zero spec reported active")
	}
	dst, src := faultPayload(64)
	for i := 0; i < 50; i++ {
		st, err := f.Pull(dst, src, Xfer{Enc: FP32})
		if err != nil {
			t.Fatalf("inactive faulty errored: %v", err)
		}
		if st.BusBytes != 4*64 || st.Copies != 1 {
			t.Fatalf("stats distorted: %+v", st)
		}
	}
	if c := f.Counts(); c != (FaultCounts{}) {
		t.Fatalf("inactive faulty injected: %+v", c)
	}
	if f.Name() != "COMM+faulty" {
		t.Fatalf("Name = %q", f.Name())
	}
	if f.CopiesPerTransfer() != 1 {
		t.Fatal("copies not delegated")
	}
}

func TestFaultyDeterministicSchedule(t *testing.T) {
	spec := FaultSpec{Transient: 0.3, Truncate: 0.2, Seed: 99}
	sequence := func() []bool {
		f := mustNewFaulty(t, shared(1), spec)
		dst, src := faultPayload(32)
		var out []bool
		for i := 0; i < 200; i++ {
			_, err := f.Push(dst, src, Xfer{Enc: FP32})
			out = append(out, err != nil)
		}
		return out
	}
	a, b := sequence(), sequence()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at transfer %d", i)
		}
		if a[i] {
			faults++
		}
	}
	// Roughly Transient + (1-Transient)·Truncate ≈ 44% of 200 transfers.
	if faults < 50 || faults > 140 {
		t.Fatalf("injected %d faults in 200 transfers at combined rate ~0.44", faults)
	}
}

func TestFaultyTruncationIsPartial(t *testing.T) {
	f := mustNewFaulty(t, shared(1), FaultSpec{Truncate: 1, Seed: 7})
	dst, src := faultPayload(32)
	st, err := f.Pull(dst, src, Xfer{Shard: GlobalShard(MatrixQ, 0, 32), Enc: FP32})
	if err == nil || !strings.Contains(err.Error(), "truncation") {
		t.Fatalf("want truncation error, got %v", err)
	}
	if st.BusBytes <= 0 || st.BusBytes >= 4*32 {
		t.Fatalf("truncated transfer charged %d bytes, want a proper prefix", st.BusBytes)
	}
	// The prefix landed, the tail did not.
	cut := int(st.BusBytes / 4)
	for i := 0; i < cut; i++ {
		if dst[i] != src[i] {
			t.Fatalf("prefix param %d not delivered", i)
		}
	}
	for i := cut; i < len(dst); i++ {
		if dst[i] != 0 {
			t.Fatalf("param %d written past the cut", i)
		}
	}
	if c := f.Counts(); c.Truncated != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestFaultyTruncationShrinksShard(t *testing.T) {
	// A truncated transfer must hand the inner transport a shard operand
	// that matches the surviving prefix — a wire transport frames exactly
	// what the shard names, so an unshrunk shard would lie to the remote
	// store about which rows the payload covers.
	var got []Shard
	rec := recordingTransport{onXfer: func(x Xfer) { got = append(got, x.Shard) }}
	f := mustNewFaulty(t, &rec, FaultSpec{Truncate: 1, Seed: 7})
	dst, src := faultPayload(32)
	full := GlobalShard(MatrixQ, 100, 132)
	_, err := f.Pull(dst, src, Xfer{Shard: full, Enc: FP32})
	if err == nil {
		t.Fatal("truncation not injected")
	}
	if len(got) != 1 {
		t.Fatalf("inner saw %d transfers, want 1", len(got))
	}
	if got[0].Lo != full.Lo || got[0].Hi >= full.Hi || got[0].Params() <= 0 {
		t.Fatalf("inner shard = %v, want a proper prefix of %v", got[0], full)
	}
}

// recordingTransport captures the Xfer of every transfer and succeeds.
type recordingTransport struct {
	onXfer func(Xfer)
}

func (r *recordingTransport) Name() string           { return "recording" }
func (r *recordingTransport) CopiesPerTransfer() int { return 1 }
func (r *recordingTransport) Pull(dst, src []float32, x Xfer) (TransferStats, error) {
	r.onXfer(x)
	return TransferStats{BusBytes: int64(4 * len(src)), Copies: 1}, nil
}
func (r *recordingTransport) Push(dst, src []float32, x Xfer) (TransferStats, error) {
	r.onXfer(x)
	return TransferStats{BusBytes: int64(4 * len(src)), Copies: 1}, nil
}

func TestFaultyDelaySpikes(t *testing.T) {
	var slept time.Duration
	spec := FaultSpec{Delay: 1, DelayFor: time.Millisecond, Seed: 3,
		Sleep: func(d time.Duration) { slept += d }}
	f := mustNewFaulty(t, shared(1), spec)
	dst, src := faultPayload(8)
	if _, err := f.Pull(dst, src, Xfer{Enc: FP32}); err != nil {
		t.Fatal(err)
	}
	if slept != time.Millisecond {
		t.Fatalf("slept %v, want the 1ms spike", slept)
	}
	if c := f.Counts(); c.Delayed != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestRetryingRecoversFromTransients(t *testing.T) {
	inner := mustNewFaulty(t, shared(1), FaultSpec{Transient: 0.5, Seed: 11})
	tr := NewRetrying(inner, RetryPolicy{Attempts: 20})
	dst, src := faultPayload(16)
	var total TransferStats
	for i := 0; i < 40; i++ {
		for j := range dst {
			dst[j] = 0
		}
		st, err := tr.Pull(dst, src, Xfer{Enc: FP32})
		if err != nil {
			t.Fatalf("transfer %d not recovered: %v", i, err)
		}
		total.Add(st)
		for j := range dst {
			if dst[j] != src[j] {
				t.Fatalf("transfer %d delivered corrupt data", i)
			}
		}
	}
	if total.Retries == 0 {
		t.Fatal("no retries accounted at 50% transient rate")
	}
}

func TestRetryingExhaustsBudget(t *testing.T) {
	down := &downTransport{}
	tr := NewRetrying(down, RetryPolicy{Attempts: 4})
	dst, src := faultPayload(8)
	st, err := tr.Push(dst, src, Xfer{Enc: FP32})
	if err == nil || !strings.Contains(err.Error(), "4 attempts") {
		t.Fatalf("want exhaustion error, got %v", err)
	}
	if down.calls != 4 {
		t.Fatalf("inner called %d times, want 4", down.calls)
	}
	if st.Retries != 3 {
		t.Fatalf("Retries = %d, want 3 (failed attempts)", st.Retries)
	}
}

func TestRetryingStopsOnCancelledContext(t *testing.T) {
	// Once the transfer's deadline owner has cancelled, further attempts
	// can only fail the same way — the budget must not be burned.
	down := &downTransport{}
	tr := NewRetrying(down, RetryPolicy{Attempts: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst, src := faultPayload(8)
	if _, err := tr.Pull(dst, src, Xfer{Enc: FP32, Ctx: ctx}); err == nil {
		t.Fatal("cancelled transfer succeeded")
	}
	if down.calls != 1 {
		t.Fatalf("inner called %d times after cancellation, want 1", down.calls)
	}
}

func TestRetryingBackoffCapped(t *testing.T) {
	var sleeps []time.Duration
	tr := NewRetrying(&downTransport{}, RetryPolicy{
		Attempts:  6,
		BaseDelay: time.Millisecond,
		MaxDelay:  4 * time.Millisecond,
		Sleep:     func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	dst, src := faultPayload(4)
	if _, err := tr.Pull(dst, src, Xfer{Enc: FP32}); err == nil {
		t.Fatal("down transport succeeded")
	}
	want := []time.Duration{1, 2, 4, 4, 4}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times, want %d", len(sleeps), len(want))
	}
	for i, w := range want {
		if sleeps[i] != w*time.Millisecond {
			t.Fatalf("sleep %d = %v, want %v", i, sleeps[i], w*time.Millisecond)
		}
	}
}

func TestTransferStatsAddIncludesRetries(t *testing.T) {
	a := TransferStats{BusBytes: 10, Copies: 1, Retries: 2}
	a.Add(TransferStats{BusBytes: 5, Copies: 3, Retries: 1})
	if a.Retries != 3 {
		t.Fatalf("Retries = %d, want 3", a.Retries)
	}
}

// mustNewFaulty unwraps NewFaulty for tests whose specs are valid literals.
func mustNewFaulty(t *testing.T, inner Transport, spec FaultSpec) *Faulty {
	t.Helper()
	f, err := NewFaulty(inner, spec)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFaultyRejectsBadSpec(t *testing.T) {
	if _, err := NewFaulty(nil, FaultSpec{}); err == nil {
		t.Fatal("nil inner transport accepted")
	}
	if _, err := NewFaulty(shared(1), FaultSpec{Transient: 1.5}); err == nil {
		t.Fatal("out-of-range Transient rate accepted")
	}
}
