package comm

import (
	"fmt"
	"time"
)

// RetryPolicy bounds a Retrying decorator: at most Attempts tries per
// transfer, sleeping BaseDelay·2^i between tries, capped at MaxDelay.
type RetryPolicy struct {
	// Attempts is the per-transfer attempt budget (first try included);
	// values below 2 disable retrying.
	Attempts int
	// BaseDelay is the backoff before the first retry; 0 retries
	// immediately (the right setting for in-memory tests).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; 0 leaves it uncapped.
	MaxDelay time.Duration
	// Sleep replaces time.Sleep in tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.Attempts > 1 }

// Retrying decorates a Transport with capped exponential backoff. Every
// failed attempt is accounted in TransferStats.Retries (and its partial
// bus traffic in BusBytes), so the cost model can charge what a lossy link
// really costs. When the budget is exhausted the last error is returned
// wrapped, together with the accumulated stats — the parameter server
// accounts those even on failure. A transfer whose context is already
// cancelled is not retried: the deadline owner has given up, and every
// further attempt would fail the same way.
type Retrying struct {
	inner Transport
	pol   RetryPolicy
}

// NewRetrying wraps inner with the given policy.
func NewRetrying(inner Transport, pol RetryPolicy) *Retrying {
	if inner == nil {
		// lint:invariant a nil inner transport is a wiring bug in the decorator stack, never user input; every config path constructs the transport first.
		panic("comm: NewRetrying needs a transport")
	}
	if pol.Attempts < 1 {
		pol.Attempts = 1
	}
	if pol.Sleep == nil {
		// lint:allow simtime — real-execution default for backoff pacing; simulated runs and tests inject a virtual clock via RetryPolicy.Sleep.
		pol.Sleep = time.Sleep
	}
	return &Retrying{inner: inner, pol: pol}
}

// Name implements Transport.
func (r *Retrying) Name() string { return r.inner.Name() + "+retry" }

// CopiesPerTransfer implements Transport.
func (r *Retrying) CopiesPerTransfer() int { return r.inner.CopiesPerTransfer() }

// Unwrap implements Unwrapper.
func (r *Retrying) Unwrap() Transport { return r.inner }

// Pull implements Transport.
func (r *Retrying) Pull(dst, src []float32, x Xfer) (TransferStats, error) {
	return r.do(x, func() (TransferStats, error) { return r.inner.Pull(dst, src, x) })
}

// Push implements Transport.
func (r *Retrying) Push(dst, src []float32, x Xfer) (TransferStats, error) {
	return r.do(x, func() (TransferStats, error) { return r.inner.Push(dst, src, x) })
}

// RemoteAddr implements Remote by forwarding (empty for in-process bases).
func (r *Retrying) RemoteAddr() string {
	if rem, ok := r.inner.(Remote); ok {
		return rem.RemoteAddr()
	}
	return ""
}

// SyncShard implements Remote: the authoritative upload after a sync
// barrier deserves the same persistence as the transfers it feeds.
func (r *Retrying) SyncShard(src []float32, x Xfer) (TransferStats, error) {
	rem, ok := r.inner.(Remote)
	if !ok {
		return TransferStats{}, fmt.Errorf("comm: %s is not a remote transport", r.inner.Name())
	}
	return r.do(x, func() (TransferStats, error) { return rem.SyncShard(src, x) })
}

func (r *Retrying) do(x Xfer, op func() (TransferStats, error)) (TransferStats, error) {
	var total TransferStats
	delay := r.pol.BaseDelay
	var lastErr error
	for attempt := 1; attempt <= r.pol.Attempts; attempt++ {
		st, err := op()
		total.Add(st)
		if err == nil {
			total.Retries += attempt - 1
			return total, nil
		}
		lastErr = err
		if x.Err() != nil {
			// Cancelled transfers fail deterministically; stop burning
			// the budget. The attempts so far still count as retries.
			total.Retries += attempt - 1
			return total, fmt.Errorf("comm: %s: giving up after %d attempts: %w", r.inner.Name(), attempt, lastErr)
		}
		if attempt < r.pol.Attempts && delay > 0 {
			r.pol.Sleep(delay)
			delay *= 2
			if r.pol.MaxDelay > 0 && delay > r.pol.MaxDelay {
				delay = r.pol.MaxDelay
			}
		}
	}
	total.Retries += r.pol.Attempts - 1
	return total, fmt.Errorf("comm: %s: giving up after %d attempts: %w", r.inner.Name(), r.pol.Attempts, lastErr)
}
