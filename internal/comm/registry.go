package comm

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Registry kind names for the built-in in-process transports. Wire
// transports register their own kinds (internal/comm/net registers "tcp")
// so this package never imports its implementations.
const (
	// KindShared names the paper's COMM shared-memory transport.
	KindShared = "comm"
	// KindMessage names the ps-lite-style COMM-P message transport.
	KindMessage = "comm-p"
)

// Spec is the transport-neutral construction request the registry resolves
// into a Transport. Fields irrelevant to a kind are ignored by its
// constructor; fields it requires are validated there.
type Spec struct {
	// Kind selects the registered constructor ("comm", "comm-p", "tcp");
	// empty means KindShared.
	Kind string
	// Workers sizes in-process transports (clamped to ≥1).
	Workers int
	// Addr is the server endpoint a wire transport connects to.
	Addr string
	// M, N, K are the factor-matrix dimensions a wire transport declares
	// at handshake so the remote store can size its shards.
	M, N, K int
	// OpTimeout bounds each wire operation (dial, pull, push); zero lets
	// the transport pick its default.
	OpTimeout time.Duration
}

// Constructor builds a transport from a spec.
type Constructor func(Spec) (Transport, error)

var registryMu sync.RWMutex
var registry = map[string]Constructor{
	KindShared: func(spec Spec) (Transport, error) {
		return newSharedMem(spec.Workers), nil
	},
	KindMessage: func(Spec) (Transport, error) {
		return newMessage(), nil
	},
}

// Register installs a constructor for kind, replacing any previous one.
// Wire transport packages call this from init so importing them for effect
// is enough to make their kind selectable by name.
func Register(kind string, ctor Constructor) {
	if kind == "" || ctor == nil {
		// lint:invariant registration happens from package init with literal arguments; an empty kind or nil constructor is a programming error, never input.
		panic("comm: Register needs a kind and a constructor")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[kind] = ctor
}

// Kinds reports the registered kind names, sorted.
func Kinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	kinds := make([]string, 0, len(registry))
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// New resolves spec through the registry. An empty Kind selects KindShared,
// the framework's default data path.
func New(spec Spec) (Transport, error) {
	kind := spec.Kind
	if kind == "" {
		kind = KindShared
	}
	registryMu.RLock()
	ctor, ok := registry[kind]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("comm: unknown transport kind %q (registered: %v)", kind, Kinds())
	}
	return ctor(spec)
}

// MustNew is New for callers with static specs (tests, examples).
func MustNew(spec Spec) Transport {
	t, err := New(spec)
	if err != nil {
		// lint:invariant MustNew is reserved for static specs whose kinds are compiled in; a resolution failure is a programming error.
		panic(err)
	}
	return t
}
