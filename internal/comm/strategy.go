// Package comm implements HCC-MF's communication layer (paper Sections 3.4
// and 3.5): the COMM shared-memory transport with its single-copy pull/push
// buffers, the ps-lite-style COMM-P message transport used as a baseline,
// and the three communication optimisation strategies — "Transmitting Q
// matrix only", "Transmitting FP16 data", and the asynchronous
// computing-transmission pipeline.
package comm

import "fmt"

// Encoding selects the wire representation of feature data.
type Encoding int

const (
	// FP32 sends raw float32 parameters.
	FP32 Encoding = iota
	// FP16 compresses parameters to IEEE binary16 before the bus and
	// decompresses after (Strategy 2).
	FP16
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// BytesPerParam reports the wire size of one parameter.
func (e Encoding) BytesPerParam() int {
	if e == FP16 {
		return 2
	}
	return 4
}

// Strategy is a complete communication configuration for a training run.
type Strategy struct {
	// QOnly enables Strategy 1: middle epochs move only the item matrix Q
	// (the shorter dimension); P travels once, on the final push. Valid
	// only with a row grid (column grids transpose the roles, which the
	// planner handles by swapping m and n before it gets here).
	QOnly bool
	// Encoding is FP16 when Strategy 2 is active.
	Encoding Encoding
	// Streams is the number of asynchronous pull-compute-push pipelines
	// per worker (Strategy 3); 1 disables overlap.
	Streams int
}

// String implements fmt.Stringer.
func (s Strategy) String() string {
	payload := "P&Q"
	if s.QOnly {
		payload = "Q"
		if s.Encoding == FP16 {
			payload = "half-Q"
		}
	} else if s.Encoding == FP16 {
		payload = "half-P&Q"
	}
	if s.Streams > 1 {
		return fmt.Sprintf("%s/async-%d", payload, s.Streams)
	}
	return payload
}

// PullParams reports the number of parameters a worker pulls at the start
// of the given epoch (0-based) of a run with total epochs. Under Q-only
// the worker never pulls P: its own P rows arrive during preprocessing
// (workflow step ③) and row independence keeps them local thereafter.
// The naive P&Q baseline pulls the complete model every epoch.
func (s Strategy) PullParams(k, m, n, epoch, epochs int) int64 {
	if s.QOnly {
		return int64(k) * int64(n)
	}
	return int64(k) * int64(m+n)
}

// PushParams reports the number of parameters a worker pushes at the end
// of the given epoch. ownedRows is the worker's row-grid span: under
// Q-only the final push adds only those P rows (the rest of P belongs to
// other workers), while the P&Q baseline pushes the full matrices every
// epoch.
func (s Strategy) PushParams(k, m, n, ownedRows, epoch, epochs int) int64 {
	if s.QOnly {
		if epoch == epochs-1 {
			return int64(k) * int64(n+ownedRows)
		}
		return int64(k) * int64(n)
	}
	return int64(k) * int64(m+n)
}

// RunBytes reports the total bus bytes one worker with ownedRows rows moves
// over a whole training run (both directions).
func (s Strategy) RunBytes(k, m, n, ownedRows, epochs int) int64 {
	var params int64
	for e := 0; e < epochs; e++ {
		params += s.PullParams(k, m, n, e, epochs)
		params += s.PushParams(k, m, n, ownedRows, e, epochs)
	}
	return params * int64(s.Encoding.BytesPerParam())
}

// EffectiveStreams reports the usable pipeline count: Strategy 3 needs a
// copy engine to overlap transfers with compute.
func (s Strategy) EffectiveStreams(hasCopyEngine bool) int {
	if s.Streams <= 1 || !hasCopyEngine {
		return 1
	}
	return s.Streams
}

// Choose picks the paper's strategy for a problem shape: Q-only whenever a
// row grid applies and actually shrinks traffic, FP16 on top (rating scales
// are coarse, Section 3.4), and async streams when the communication-to-
// computation ratio would otherwise stay material — the paper's
// nnz/(m+n) < 10³ diagnostic.
func Choose(k, m, n int, nnz int64, streams int) Strategy {
	// Q-only always pays: it cuts traffic to n/(m+n) of the baseline, at
	// worst 1/2 when m = n. When n > m the planner transposes the problem
	// (column grid) before calling here, so the stationary matrix is
	// always the larger dimension.
	s := Strategy{QOnly: true, Encoding: FP16, Streams: 1}
	// After Q-only the per-epoch payload is k·n, so the residual
	// communication-to-computation balance is governed by nnz/n (the
	// paper's nnz/(m+n) < 10³ rule applied to the surviving traffic).
	// Below the threshold the transfers still matter and Strategy 3's
	// async pipelines are worth their loss of synchrony — the paper
	// enables them on R1 and ML-20m but not on Netflix or R2.
	if n > 0 && float64(nnz)/float64(n) < 1000 && streams > 1 {
		s.Streams = streams
	}
	return s
}
