package sparse

import (
	"sort"
	"testing"
)

// refSortByRow is the reference ordering: stable comparison sort by
// (U, I). The counting sort and the degenerate-shape fallback must both
// reproduce it exactly, including the relative order of duplicate (U, I)
// keys with different values.
func refSortByRow(e []Rating) {
	sort.SliceStable(e, func(a, b int) bool {
		if e[a].U != e[b].U {
			return e[a].U < e[b].U
		}
		return e[a].I < e[b].I
	})
}

func refSortByCol(e []Rating) {
	sort.SliceStable(e, func(a, b int) bool {
		if e[a].I != e[b].I {
			return e[a].I < e[b].I
		}
		return e[a].U < e[b].U
	})
}

// taggedCOO tags each value with its insertion index so stability
// violations are visible on duplicate (row, col) keys.
func taggedCOO(rows, cols, nnz int, seed uint64) *COO {
	rng := NewRand(seed)
	m := NewCOO(rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Add(int32(rng.Intn(rows)), int32(rng.Intn(cols)), float32(i))
	}
	return m
}

func TestSortByRowMatchesStableReference(t *testing.T) {
	for _, tc := range []struct{ rows, cols, nnz int }{
		{50, 40, 2000},   // dense in keys: many duplicate (row,col) pairs
		{100, 80, 300},   // sparse
		{3, 3, 500},      // tiny key space, heavy duplication
		{5000, 4000, 50}, // degenerate: falls back to comparison sort
		{1, 1, 10},
		{10, 10, 0},
		{10, 10, 1},
	} {
		m := taggedCOO(tc.rows, tc.cols, max(tc.nnz, 0), 7)
		want := append([]Rating(nil), m.Entries...)
		refSortByRow(want)
		m.SortByRow()
		for i := range want {
			if m.Entries[i] != want[i] {
				t.Fatalf("%dx%d/%d: entry %d = %v, want %v",
					tc.rows, tc.cols, tc.nnz, i, m.Entries[i], want[i])
			}
		}
	}
}

func TestSortByColMatchesStableReference(t *testing.T) {
	for _, tc := range []struct{ rows, cols, nnz int }{
		{50, 40, 2000},
		{4, 4, 600},
		{4000, 5000, 50}, // fallback path
	} {
		m := taggedCOO(tc.rows, tc.cols, tc.nnz, 11)
		want := append([]Rating(nil), m.Entries...)
		refSortByCol(want)
		m.SortByCol()
		for i := range want {
			if m.Entries[i] != want[i] {
				t.Fatalf("%dx%d/%d: entry %d = %v, want %v",
					tc.rows, tc.cols, tc.nnz, i, m.Entries[i], want[i])
			}
		}
	}
}

func TestSortRatingsMatchesStableReference(t *testing.T) {
	// SortRatings is the slice-form export of the row-major sort; it must
	// reproduce SortByRow's ordering exactly on both the counting path and
	// the degenerate-shape fallback, operating on a bare slice (the
	// fast-math shard-sorting use: no *COO in hand).
	for _, tc := range []struct{ rows, cols, nnz int }{
		{50, 40, 2000},
		{3, 3, 500},
		{5000, 4000, 50}, // fallback path
		{10, 10, 0},
	} {
		m := taggedCOO(tc.rows, tc.cols, tc.nnz, 13)
		want := append([]Rating(nil), m.Entries...)
		refSortByRow(want)
		got := append([]Rating(nil), m.Entries...)
		SortRatings(got, tc.rows, tc.cols)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%d/%d: entry %d = %v, want %v",
					tc.rows, tc.cols, tc.nnz, i, got[i], want[i])
			}
		}
	}
}

func TestSortReusesPooledScratch(t *testing.T) {
	// Two back-to-back sorts of same-size matrices must hit the pooled
	// scratch; the second sort should not grow the buffers. (We cannot
	// assert zero allocs — the pool is shared — but output correctness
	// under reuse is the property that matters.)
	a := taggedCOO(64, 64, 4096, 3)
	b := taggedCOO(64, 64, 4096, 4)
	a.SortByRow()
	want := append([]Rating(nil), b.Entries...)
	refSortByRow(want)
	b.SortByRow()
	for i := range want {
		if b.Entries[i] != want[i] {
			t.Fatalf("pooled-scratch reuse corrupted sort at %d", i)
		}
	}
}

func TestRowColCountsInto(t *testing.T) {
	m := taggedCOO(30, 20, 500, 9)
	wantR, wantC := m.RowCounts(), m.ColCounts()

	buf := make([]int, 0, 64) // capacity covers both dims
	gotR := m.RowCountsInto(buf)
	if len(gotR) != m.Rows {
		t.Fatalf("RowCountsInto len %d, want %d", len(gotR), m.Rows)
	}
	for i := range wantR {
		if gotR[i] != wantR[i] {
			t.Fatalf("row %d: %d != %d", i, gotR[i], wantR[i])
		}
	}
	// Reuse the same dirty buffer: counts must be reset, not accumulated.
	gotC := m.ColCountsInto(gotR)
	for i := range wantC {
		if gotC[i] != wantC[i] {
			t.Fatalf("col %d: %d != %d", i, gotC[i], wantC[i])
		}
	}
	// Too-small buffer must allocate, not panic.
	small := make([]int, 2)
	if got := m.RowCountsInto(small); len(got) != m.Rows {
		t.Fatalf("grow path returned len %d", len(got))
	}
}

func TestCheckRangeMatchesAppend(t *testing.T) {
	m := NewCOO(3, 4, 0)
	for _, c := range []struct{ u, i int32 }{{-1, 0}, {3, 0}, {0, -1}, {0, 4}} {
		appendErr := m.Append(c.u, c.i, 1)
		checkErr := CheckRange(c.u, c.i, m.Rows, m.Cols)
		if appendErr == nil || checkErr == nil {
			t.Fatalf("(%d,%d): expected errors, got %v / %v", c.u, c.i, appendErr, checkErr)
		}
		if appendErr.Error() != checkErr.Error() {
			t.Fatalf("(%d,%d): texts differ: %q vs %q", c.u, c.i, appendErr, checkErr)
		}
	}
	if err := CheckRange(2, 3, 3, 4); err != nil {
		t.Fatalf("in-range coordinate rejected: %v", err)
	}
}
