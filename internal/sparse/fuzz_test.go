package sparse

import (
	"sort"
	"testing"
)

// FuzzCOOCSRGridRoundTrip drives arbitrary entry sets through the
// COO → CSR → COO conversion and the block-grid bucketing, checking the
// structural invariants every partitioning layer above relies on: no
// entry is ever lost or invented (NNZ preserved), per-row/column
// histograms survive the round trip, the CSR index validates, and every
// entry lands in exactly the grid cell whose row/column range covers it.
// fp16 and dataset already carry fuzz targets; this covers the remaining
// parser-shaped surface between raw triplets and worker shards.
func FuzzCOOCSRGridRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(5), uint8(2), uint8(2), []byte{0, 0, 1, 1, 2, 3, 3, 4})
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), []byte{})
	f.Add(uint8(16), uint8(3), uint8(4), uint8(3), []byte{7, 1, 9, 2, 15, 0, 3, 2, 7, 1})
	f.Fuzz(func(t *testing.T, rowsB, colsB, nbrB, nbcB uint8, raw []byte) {
		rows := int(rowsB)%64 + 1
		cols := int(colsB)%64 + 1
		m := NewCOO(rows, cols, len(raw)/2)
		for p := 0; p+1 < len(raw); p += 2 {
			u := int32(int(raw[p]) % rows)
			i := int32(int(raw[p+1]) % cols)
			v := float32(p%7) - 3
			if err := m.Append(u, i, v); err != nil {
				t.Fatalf("in-range Append rejected (%d,%d): %v", u, i, err)
			}
		}

		c := NewCSRFromCOO(m)
		if err := c.Validate(); err != nil {
			t.Fatalf("CSR from valid COO does not validate: %v", err)
		}
		if c.NNZ() != m.NNZ() {
			t.Fatalf("CSR nnz = %d, COO nnz = %d", c.NNZ(), m.NNZ())
		}

		back := c.ToCOO()
		if back.NNZ() != m.NNZ() {
			t.Fatalf("round-trip nnz = %d, want %d", back.NNZ(), m.NNZ())
		}
		if !sameHistogram(m.RowCounts(), back.RowCounts()) {
			t.Fatal("round trip changed per-row entry counts")
		}
		if !sameHistogram(m.ColCounts(), back.ColCounts()) {
			t.Fatal("round trip changed per-column entry counts")
		}
		if !sameEntryMultiset(m, back) {
			t.Fatal("round trip changed the entry multiset")
		}

		nbr := int(nbrB)%rows + 1
		nbc := int(nbcB)%cols + 1
		g, err := NewBlockGrid(m, nbr, nbc)
		if err != nil {
			t.Fatalf("NewBlockGrid(%d,%d) on %dx%d: %v", nbr, nbc, rows, cols, err)
		}
		if g.NNZ() != m.NNZ() {
			t.Fatalf("grid nnz = %d, want %d", g.NNZ(), m.NNZ())
		}
		for bi := range g.Blocks {
			b := &g.Blocks[bi]
			rlo, rhi := g.RowRange(b.BR)
			clo, chi := g.ColRange(b.BC)
			for _, e := range b.Entries {
				if int(e.U) < rlo || int(e.U) >= rhi || int(e.I) < clo || int(e.I) >= chi {
					t.Fatalf("entry (%d,%d) in block (%d,%d) outside its range rows [%d,%d) cols [%d,%d)",
						e.U, e.I, b.BR, b.BC, rlo, rhi, clo, chi)
				}
			}
		}

		// Gridding the round-tripped matrix must bucket identically.
		g2, err := NewBlockGrid(back, nbr, nbc)
		if err != nil {
			t.Fatalf("NewBlockGrid on round-tripped COO: %v", err)
		}
		for bi := range g.Blocks {
			if len(g.Blocks[bi].Entries) != len(g2.Blocks[bi].Entries) {
				t.Fatalf("block %d count %d != round-tripped %d",
					bi, len(g.Blocks[bi].Entries), len(g2.Blocks[bi].Entries))
			}
		}
	})
}

func sameHistogram(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameEntryMultiset(a, b *COO) bool {
	sa, sb := a.Clone().Entries, b.Clone().Entries
	less := func(s []Rating) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].U != s[j].U {
				return s[i].U < s[j].U
			}
			if s[i].I != s[j].I {
				return s[i].I < s[j].I
			}
			return s[i].V < s[j].V
		}
	}
	sort.Slice(sa, less(sa))
	sort.Slice(sb, less(sb))
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
