package sparse

import (
	"errors"
	"fmt"
)

// GridKind selects how the DataManager slices the rating matrix across
// workers. The paper (Section 3.3) uses a row grid when the matrix has more
// rows than columns, otherwise a column grid; the framework may also use a
// 2-D block grid for FPSGD-style exclusive block scheduling.
type GridKind int

const (
	// RowGrid assigns contiguous groups of rows to workers.
	RowGrid GridKind = iota
	// ColGrid assigns contiguous groups of columns to workers.
	ColGrid
	// BlockGrid tiles the matrix into b×b blocks (FPSGD scheduling unit).
	BlockGrid
)

// String implements fmt.Stringer.
func (k GridKind) String() string {
	switch k {
	case RowGrid:
		return "row-grid"
	case ColGrid:
		return "col-grid"
	case BlockGrid:
		return "block-grid"
	default:
		return fmt.Sprintf("GridKind(%d)", int(k))
	}
}

// PreferredGrid picks the grid orientation the paper's DataManager would:
// row grid when rows ≥ cols, else column grid.
func PreferredGrid(rows, cols int) GridKind {
	if rows >= cols {
		return RowGrid
	}
	return ColGrid
}

// Slice describes one worker's shard of the rating matrix under a row or
// column grid: the half-open index range [Lo, Hi) along the grid dimension
// and the number of stored entries inside it.
type Slice struct {
	Lo  int
	Hi  int
	NNZ int64
}

// Span reports the number of rows (or columns) in the slice.
func (s Slice) Span() int { return s.Hi - s.Lo }

// CutRowGrid cuts the matrix into len(weights) contiguous row ranges whose
// nnz counts match the weights as closely as a contiguous cut allows.
// Weights must be positive and sum to ~1 (they are renormalised). The cut
// walks rows greedily, closing a slice when its nnz reaches the target.
func CutRowGrid(c *CSR, weights []float64) ([]Slice, error) {
	return cutGrid(c.RowPtr, c.Rows, weights)
}

// CutColGrid cuts a column grid. It requires the caller to supply the CSR of
// the transposed matrix (column-major index); this keeps the hot path free
// of an implicit transpose.
func CutColGrid(ct *CSR, weights []float64) ([]Slice, error) {
	return cutGrid(ct.RowPtr, ct.Rows, weights)
}

func cutGrid(ptr []int64, nLines int, weights []float64) ([]Slice, error) {
	p := len(weights)
	if p == 0 {
		return nil, errors.New("sparse: no weights")
	}
	if nLines < p {
		return nil, fmt.Errorf("sparse: cannot cut %d lines into %d slices", nLines, p)
	}
	var wsum float64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("sparse: weight %d is %v, must be positive", i, w)
		}
		wsum += w
	}
	total := ptr[nLines]
	slices := make([]Slice, p)
	line := 0
	var consumed int64
	for s := 0; s < p; s++ {
		remainingSlices := p - s - 1
		target := consumed + int64(weights[s]/wsum*float64(total)+0.5)
		if s == p-1 {
			target = total
		}
		lo := line
		// Every remaining slice must receive at least one line.
		maxLine := nLines - remainingSlices
		for line < maxLine && ptr[line] < target {
			line++
		}
		if line == lo { // guarantee non-empty span
			line++
		}
		slices[s] = Slice{Lo: lo, Hi: line, NNZ: ptr[line] - ptr[lo]}
		consumed = ptr[line]
	}
	slices[p-1].Hi = nLines
	slices[p-1].NNZ = total - ptr[slices[p-1].Lo]
	return slices, nil
}

// Block is one tile of a 2-D block grid, identified by its (BR, BC) block
// coordinates and carrying the entries that fall inside it.
type Block struct {
	BR, BC  int
	Entries []Rating
}

// BlockGridded tiles the matrix into nbr×nbc blocks and buckets entries
// into them. Used by the FPSGD baseline's exclusive block scheduler.
type BlockGridded struct {
	Rows, Cols int
	NBR, NBC   int
	Blocks     []Block // row-major: Blocks[br*NBC+bc]
}

// NewBlockGrid tiles m into nbr×nbc blocks. Entries inside each block keep
// their order from m.
func NewBlockGrid(m *COO, nbr, nbc int) (*BlockGridded, error) {
	if nbr <= 0 || nbc <= 0 {
		return nil, errors.New("sparse: block grid dimensions must be positive")
	}
	if nbr > m.Rows || nbc > m.Cols {
		return nil, fmt.Errorf("sparse: grid %dx%d exceeds matrix %dx%d", nbr, nbc, m.Rows, m.Cols)
	}
	g := &BlockGridded{Rows: m.Rows, Cols: m.Cols, NBR: nbr, NBC: nbc,
		Blocks: make([]Block, nbr*nbc)}
	for i := range g.Blocks {
		g.Blocks[i].BR = i / nbc
		g.Blocks[i].BC = i % nbc
	}
	rowOf := func(u int32) int {
		br := int(int64(u) * int64(nbr) / int64(m.Rows))
		if br >= nbr {
			br = nbr - 1
		}
		return br
	}
	colOf := func(c int32) int {
		bc := int(int64(c) * int64(nbc) / int64(m.Cols))
		if bc >= nbc {
			bc = nbc - 1
		}
		return bc
	}
	for _, e := range m.Entries {
		idx := rowOf(e.U)*nbc + colOf(e.I)
		g.Blocks[idx].Entries = append(g.Blocks[idx].Entries, e)
	}
	return g, nil
}

// RowRange reports the row index range [lo, hi) covered by block row br:
// exactly the rows u with floor(u·NBR/Rows) == br, the bucketing
// NewBlockGrid applies, so the bounds are ceilings. (The previous
// floor-based bounds disagreed with the bucketing whenever Rows%NBR != 0;
// the sparse round-trip fuzz target caught the mismatch.)
func (g *BlockGridded) RowRange(br int) (lo, hi int) {
	lo = (br*g.Rows + g.NBR - 1) / g.NBR
	hi = ((br+1)*g.Rows + g.NBR - 1) / g.NBR
	return lo, hi
}

// ColRange reports the column index range [lo, hi) covered by block col
// bc, mirroring RowRange.
func (g *BlockGridded) ColRange(bc int) (lo, hi int) {
	lo = (bc*g.Cols + g.NBC - 1) / g.NBC
	hi = ((bc+1)*g.Cols + g.NBC - 1) / g.NBC
	return lo, hi
}

// NNZ reports total entries across all blocks.
func (g *BlockGridded) NNZ() int {
	n := 0
	for i := range g.Blocks {
		n += len(g.Blocks[i].Entries)
	}
	return n
}
