package sparse

import (
	"testing"
	"testing/quick"
)

func randomCOO(seed uint64, rows, cols, nnz int) *COO {
	rng := NewRand(seed)
	m := NewCOO(rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Add(int32(rng.Intn(rows)), int32(rng.Intn(cols)), 1+4*rng.Float32())
	}
	return m
}

func TestCSRFromCOOBasic(t *testing.T) {
	m := mkTestCOO(t)
	c := NewCSRFromCOO(m)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.NNZ() != m.NNZ() {
		t.Fatalf("NNZ = %d, want %d", c.NNZ(), m.NNZ())
	}
	wantRowNNZ := []int{2, 1, 1, 2}
	for r, want := range wantRowNNZ {
		if got := c.RowNNZ(r); got != want {
			t.Fatalf("RowNNZ(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestCSRRangeNNZ(t *testing.T) {
	m := mkTestCOO(t)
	c := NewCSRFromCOO(m)
	if got := c.RangeNNZ(0, 4); got != 6 {
		t.Fatalf("RangeNNZ(0,4) = %d, want 6", got)
	}
	if got := c.RangeNNZ(1, 3); got != 2 {
		t.Fatalf("RangeNNZ(1,3) = %d, want 2", got)
	}
	if got := c.RangeNNZ(2, 2); got != 0 {
		t.Fatalf("RangeNNZ(2,2) = %d, want 0", got)
	}
}

func TestCSRToCOORoundTrip(t *testing.T) {
	m := randomCOO(3, 50, 40, 500)
	c := NewCSRFromCOO(m)
	back := c.ToCOO()
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip NNZ = %d, want %d", back.NNZ(), m.NNZ())
	}
	// Round trip through CSR sorts by row (stable within rows); compare to
	// a row-sorted original. SortByRow also sorts by column within a row,
	// so compare multisets per row instead.
	counts := map[Rating]int{}
	for _, e := range m.Entries {
		counts[e]++
	}
	for _, e := range back.Entries {
		counts[e]--
		if counts[e] == 0 {
			delete(counts, e)
		}
	}
	if len(counts) != 0 {
		t.Fatalf("round trip changed entry multiset: %d residuals", len(counts))
	}
}

func TestCSRStableWithinRow(t *testing.T) {
	m := NewCOO(2, 4, 4)
	m.Add(0, 3, 1)
	m.Add(0, 1, 2)
	m.Add(0, 2, 3)
	m.Add(1, 0, 4)
	c := NewCSRFromCOO(m)
	want := []int32{3, 1, 2}
	for i, col := range want {
		if c.Col[i] != col {
			t.Fatalf("row 0 not stable: Col[%d]=%d, want %d", i, c.Col[i], col)
		}
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	m := mkTestCOO(t)
	c := NewCSRFromCOO(m)

	c.RowPtr[0] = 1
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted RowPtr[0] != 0")
	}
	c.RowPtr[0] = 0

	old := c.RowPtr[2]
	c.RowPtr[2] = c.RowPtr[1] - 1
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted non-monotone RowPtr")
	}
	c.RowPtr[2] = old

	oldCol := c.Col[0]
	c.Col[0] = 99
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range column")
	}
	c.Col[0] = oldCol
}

func TestCSREmptyMatrix(t *testing.T) {
	m := NewCOO(3, 3, 0)
	c := NewCSRFromCOO(m)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.NNZ() != 0 {
		t.Fatalf("empty matrix NNZ = %d", c.NNZ())
	}
}

// Property: for random matrices, CSR validates and preserves nnz per row.
func TestCSRPropertyRowCounts(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomCOO(seed, 23, 19, 300)
		c := NewCSRFromCOO(m)
		if c.Validate() != nil {
			return false
		}
		counts := m.RowCounts()
		for r := 0; r < m.Rows; r++ {
			if c.RowNNZ(r) != counts[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
