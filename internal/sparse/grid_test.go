package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPreferredGrid(t *testing.T) {
	if g := PreferredGrid(100, 10); g != RowGrid {
		t.Fatalf("PreferredGrid(100,10) = %v, want row-grid", g)
	}
	if g := PreferredGrid(10, 100); g != ColGrid {
		t.Fatalf("PreferredGrid(10,100) = %v, want col-grid", g)
	}
	if g := PreferredGrid(50, 50); g != RowGrid {
		t.Fatalf("PreferredGrid(50,50) = %v, want row-grid on tie", g)
	}
}

func TestGridKindString(t *testing.T) {
	cases := map[GridKind]string{
		RowGrid: "row-grid", ColGrid: "col-grid", BlockGrid: "block-grid",
		GridKind(9): "GridKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestCutRowGridCoversAllRows(t *testing.T) {
	m := randomCOO(11, 1000, 100, 20000)
	c := NewCSRFromCOO(m)
	weights := []float64{0.1, 0.2, 0.3, 0.4}
	slices, err := CutRowGrid(c, weights)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != len(weights) {
		t.Fatalf("got %d slices, want %d", len(slices), len(weights))
	}
	if slices[0].Lo != 0 || slices[len(slices)-1].Hi != c.Rows {
		t.Fatalf("slices do not cover rows: first=%+v last=%+v", slices[0], slices[len(slices)-1])
	}
	var nnz int64
	for i := 1; i < len(slices); i++ {
		if slices[i].Lo != slices[i-1].Hi {
			t.Fatalf("gap between slice %d and %d", i-1, i)
		}
	}
	for _, s := range slices {
		if s.Span() <= 0 {
			t.Fatalf("empty slice %+v", s)
		}
		nnz += s.NNZ
	}
	if nnz != int64(m.NNZ()) {
		t.Fatalf("slices cover %d nnz, want %d", nnz, m.NNZ())
	}
}

func TestCutRowGridRespectsWeights(t *testing.T) {
	m := randomCOO(13, 10000, 100, 200000)
	c := NewCSRFromCOO(m)
	weights := []float64{0.5, 0.25, 0.25}
	slices, err := CutRowGrid(c, weights)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(m.NNZ())
	for i, s := range slices {
		frac := float64(s.NNZ) / total
		if math.Abs(frac-weights[i]) > 0.03 {
			t.Fatalf("slice %d holds %.3f of nnz, want %.3f±0.03", i, frac, weights[i])
		}
	}
}

func TestCutRowGridErrors(t *testing.T) {
	m := randomCOO(17, 10, 10, 50)
	c := NewCSRFromCOO(m)
	if _, err := CutRowGrid(c, nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := CutRowGrid(c, []float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := CutRowGrid(c, make11()); err == nil {
		t.Fatal("more slices than rows accepted")
	}
}

func make11() []float64 {
	w := make([]float64, 11)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestCutRowGridUnnormalisedWeights(t *testing.T) {
	m := randomCOO(19, 1000, 50, 30000)
	c := NewCSRFromCOO(m)
	a, err := CutRowGrid(c, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CutRowGrid(c, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weights not renormalised: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestCutColGrid(t *testing.T) {
	m := randomCOO(23, 100, 2000, 40000)
	ct := NewCSRFromCOO(m.Transpose())
	slices, err := CutColGrid(ct, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if slices[len(slices)-1].Hi != m.Cols {
		t.Fatalf("col grid does not cover columns: %+v", slices)
	}
}

func TestNewBlockGrid(t *testing.T) {
	m := randomCOO(29, 64, 64, 1000)
	g, err := NewBlockGrid(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NNZ() != m.NNZ() {
		t.Fatalf("blocks hold %d entries, want %d", g.NNZ(), m.NNZ())
	}
	for _, b := range g.Blocks {
		rlo, rhi := g.RowRange(b.BR)
		clo, chi := g.ColRange(b.BC)
		for _, e := range b.Entries {
			if int(e.U) < rlo || int(e.U) >= rhi {
				t.Fatalf("entry %v escaped block row range [%d,%d)", e, rlo, rhi)
			}
			if int(e.I) < clo || int(e.I) >= chi {
				t.Fatalf("entry %v escaped block col range [%d,%d)", e, clo, chi)
			}
		}
	}
}

func TestNewBlockGridErrors(t *testing.T) {
	m := randomCOO(31, 4, 4, 8)
	if _, err := NewBlockGrid(m, 0, 2); err == nil {
		t.Fatal("zero block rows accepted")
	}
	if _, err := NewBlockGrid(m, 2, 0); err == nil {
		t.Fatal("zero block cols accepted")
	}
	if _, err := NewBlockGrid(m, 5, 2); err == nil {
		t.Fatal("grid larger than matrix accepted")
	}
}

func TestBlockGridRangesPartition(t *testing.T) {
	g := &BlockGridded{Rows: 10, Cols: 7, NBR: 3, NBC: 2}
	last := 0
	for br := 0; br < g.NBR; br++ {
		lo, hi := g.RowRange(br)
		if lo != last {
			t.Fatalf("row range gap at block %d: lo=%d want %d", br, lo, last)
		}
		if hi <= lo {
			t.Fatalf("empty row range at block %d", br)
		}
		last = hi
	}
	if last != g.Rows {
		t.Fatalf("row ranges end at %d, want %d", last, g.Rows)
	}
}

// Property: any valid weight vector yields a contiguous exact partition.
func TestCutRowGridPartitionProperty(t *testing.T) {
	f := func(seed uint64, w1, w2, w3 uint8) bool {
		weights := []float64{float64(w1) + 1, float64(w2) + 1, float64(w3) + 1}
		m := randomCOO(seed, 200, 50, 5000)
		c := NewCSRFromCOO(m)
		slices, err := CutRowGrid(c, weights)
		if err != nil {
			return false
		}
		if slices[0].Lo != 0 || slices[2].Hi != 200 {
			return false
		}
		var nnz int64
		for i, s := range slices {
			if i > 0 && s.Lo != slices[i-1].Hi {
				return false
			}
			nnz += s.NNZ
		}
		return nnz == int64(m.NNZ())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
