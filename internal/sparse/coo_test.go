package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func mkTestCOO(t *testing.T) *COO {
	t.Helper()
	m := NewCOO(4, 3, 6)
	m.Add(0, 0, 5)
	m.Add(0, 2, 3)
	m.Add(1, 1, 2)
	m.Add(2, 0, 4)
	m.Add(3, 2, 1)
	m.Add(3, 0, 2.5)
	return m
}

func TestCOOAddAndNNZ(t *testing.T) {
	m := mkTestCOO(t)
	if got := m.NNZ(); got != 6 {
		t.Fatalf("NNZ = %d, want 6", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	m := NewCOO(2, 2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	m.Add(2, 0, 1)
}

func TestCOOAppendError(t *testing.T) {
	m := NewCOO(2, 2, 0)
	if err := m.Append(0, 1, 1); err != nil {
		t.Fatalf("valid Append: %v", err)
	}
	if err := m.Append(0, 2, 1); err == nil {
		t.Fatal("out-of-range Append returned nil error")
	}
	if err := m.Append(-1, 0, 1); err == nil {
		t.Fatal("negative-row Append returned nil error")
	}
}

func TestCOOCloneIsDeep(t *testing.T) {
	m := mkTestCOO(t)
	c := m.Clone()
	c.Entries[0].V = 99
	if m.Entries[0].V == 99 {
		t.Fatal("Clone shares entry storage with original")
	}
}

func TestCOOTransposeRoundTrip(t *testing.T) {
	m := mkTestCOO(t)
	tt := m.Transpose()
	if tt.Rows != m.Cols || tt.Cols != m.Rows {
		t.Fatalf("transpose dims = %dx%d, want %dx%d", tt.Rows, tt.Cols, m.Cols, m.Rows)
	}
	back := tt.Transpose()
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatal("double transpose changed shape")
	}
	for i := range m.Entries {
		if m.Entries[i] != back.Entries[i] {
			t.Fatalf("entry %d: %v != %v after double transpose", i, m.Entries[i], back.Entries[i])
		}
	}
}

func TestCOOMeanRating(t *testing.T) {
	m := mkTestCOO(t)
	want := (5 + 3 + 2 + 4 + 1 + 2.5) / 6.0
	if got := m.MeanRating(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanRating = %v, want %v", got, want)
	}
	empty := NewCOO(1, 1, 0)
	if got := empty.MeanRating(); got != 0 {
		t.Fatalf("MeanRating of empty = %v, want 0", got)
	}
}

func TestCOOValidateCatchesNaN(t *testing.T) {
	m := NewCOO(1, 1, 1)
	m.Entries = append(m.Entries, Rating{0, 0, float32(math.NaN())})
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted NaN rating")
	}
}

func TestCOOValidateCatchesCorruptCoordinates(t *testing.T) {
	m := NewCOO(2, 2, 1)
	m.Entries = append(m.Entries, Rating{U: 5, I: 0, V: 1})
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range row")
	}
	m.Entries[0] = Rating{U: 0, I: 5, V: 1}
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range col")
	}
}

func TestCOORowColCounts(t *testing.T) {
	m := mkTestCOO(t)
	rc := m.RowCounts()
	wantRC := []int{2, 1, 1, 2}
	for i := range wantRC {
		if rc[i] != wantRC[i] {
			t.Fatalf("RowCounts[%d] = %d, want %d", i, rc[i], wantRC[i])
		}
	}
	cc := m.ColCounts()
	wantCC := []int{3, 1, 2}
	for i := range wantCC {
		if cc[i] != wantCC[i] {
			t.Fatalf("ColCounts[%d] = %d, want %d", i, cc[i], wantCC[i])
		}
	}
}

func TestCOOSortByRow(t *testing.T) {
	m := mkTestCOO(t)
	m.Shuffle(NewRand(7))
	m.SortByRow()
	for i := 1; i < len(m.Entries); i++ {
		a, b := m.Entries[i-1], m.Entries[i]
		if a.U > b.U || (a.U == b.U && a.I > b.I) {
			t.Fatalf("entries not sorted by row at %d: %v then %v", i, a, b)
		}
	}
}

func TestCOOSortByCol(t *testing.T) {
	m := mkTestCOO(t)
	m.SortByCol()
	for i := 1; i < len(m.Entries); i++ {
		a, b := m.Entries[i-1], m.Entries[i]
		if a.I > b.I || (a.I == b.I && a.U > b.U) {
			t.Fatalf("entries not sorted by col at %d: %v then %v", i, a, b)
		}
	}
}

func TestCOOShuffleIsPermutation(t *testing.T) {
	m := mkTestCOO(t)
	orig := m.Clone()
	m.Shuffle(NewRand(42))
	if m.NNZ() != orig.NNZ() {
		t.Fatal("Shuffle changed NNZ")
	}
	// Multiset equality via sorting both.
	m.SortByRow()
	orig.SortByRow()
	for i := range orig.Entries {
		if m.Entries[i] != orig.Entries[i] {
			t.Fatalf("Shuffle is not a permutation: %v vs %v", m.Entries[i], orig.Entries[i])
		}
	}
}

func TestCOOShuffleDeterministic(t *testing.T) {
	a, b := mkTestCOO(t), mkTestCOO(t)
	a.Shuffle(NewRand(5))
	b.Shuffle(NewRand(5))
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("same-seed shuffles diverged")
		}
	}
}

func TestCOOSplitTrainTest(t *testing.T) {
	m := NewCOO(100, 100, 0)
	rng := NewRand(1)
	for i := 0; i < 10000; i++ {
		m.Add(int32(rng.Intn(100)), int32(rng.Intn(100)), 1)
	}
	train, test, err := m.SplitTrainTest(NewRand(2), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if train.NNZ()+test.NNZ() != m.NNZ() {
		t.Fatalf("split lost entries: %d + %d != %d", train.NNZ(), test.NNZ(), m.NNZ())
	}
	frac := float64(test.NNZ()) / float64(m.NNZ())
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("test fraction %v too far from 0.2", frac)
	}
	if train.Rows != m.Rows || test.Cols != m.Cols {
		t.Fatal("split changed dimensions")
	}
}

func TestCOOSplitTrainTestRejectsBadFrac(t *testing.T) {
	m := mkTestCOO(t)
	for _, frac := range []float64{-0.1, 1.0, 1.5} {
		if _, _, err := m.SplitTrainTest(NewRand(1), frac); err == nil {
			t.Fatalf("SplitTrainTest(frac=%v) did not error", frac)
		}
	}
}

// Property: sorting never changes the multiset of entries.
func TestCOOSortPreservesEntriesProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := NewRand(seed)
		m := NewCOO(17, 13, int(n))
		for i := 0; i < int(n); i++ {
			m.Add(int32(rng.Intn(17)), int32(rng.Intn(13)), rng.Float32())
		}
		counts := map[Rating]int{}
		for _, e := range m.Entries {
			counts[e]++
		}
		m.SortByRow()
		for _, e := range m.Entries {
			counts[e]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return m.NNZ() == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
