package sparse

import "fmt"

// CSR is a compressed sparse row index over a rating matrix. RowPtr has
// Rows+1 entries; the entries of row r live at positions
// [RowPtr[r], RowPtr[r+1]) of Col/Val. HCC-MF's DataManager uses CSR to cut
// row grids with exact nnz accounting and workers use it for row-local
// iteration.
type CSR struct {
	Rows   int
	Cols   int
	RowPtr []int64
	Col    []int32
	Val    []float32
}

// NewCSRFromCOO builds a CSR index from a COO matrix using a counting sort
// over rows; entries within a row keep their COO relative order (stable).
func NewCSRFromCOO(m *COO) *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
		Col:    make([]int32, len(m.Entries)),
		Val:    make([]float32, len(m.Entries)),
	}
	for _, e := range m.Entries {
		c.RowPtr[e.U+1]++
	}
	for r := 0; r < m.Rows; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	next := make([]int64, m.Rows)
	copy(next, c.RowPtr[:m.Rows])
	for _, e := range m.Entries {
		pos := next[e.U]
		next[e.U]++
		c.Col[pos] = e.I
		c.Val[pos] = e.V
	}
	return c
}

// NNZ reports the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Col) }

// RowNNZ reports the number of entries in row r.
func (c *CSR) RowNNZ(r int) int { return int(c.RowPtr[r+1] - c.RowPtr[r]) }

// RangeNNZ reports the number of entries in rows [lo, hi).
func (c *CSR) RangeNNZ(lo, hi int) int64 {
	return c.RowPtr[hi] - c.RowPtr[lo]
}

// ToCOO converts back to coordinate form (row-major entry order).
func (c *CSR) ToCOO() *COO {
	out := NewCOO(c.Rows, c.Cols, c.NNZ())
	for r := 0; r < c.Rows; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			out.Entries = append(out.Entries, Rating{U: int32(r), I: c.Col[p], V: c.Val[p]})
		}
	}
	return out
}

// Validate checks CSR structural invariants.
func (c *CSR) Validate() error {
	if len(c.RowPtr) != c.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(c.RowPtr), c.Rows+1)
	}
	if c.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0]=%d, want 0", c.RowPtr[0])
	}
	if c.RowPtr[c.Rows] != int64(len(c.Col)) || len(c.Col) != len(c.Val) {
		return fmt.Errorf("sparse: inconsistent lengths rowptr-end=%d col=%d val=%d",
			c.RowPtr[c.Rows], len(c.Col), len(c.Val))
	}
	for r := 0; r < c.Rows; r++ {
		if c.RowPtr[r+1] < c.RowPtr[r] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", r)
		}
	}
	for i, col := range c.Col {
		if col < 0 || int(col) >= c.Cols {
			return fmt.Errorf("sparse: Col[%d]=%d out of range [0,%d)", i, col, c.Cols)
		}
	}
	return nil
}
