package sparse

import "testing"

func shardMatrix(t *testing.T, rows, cols, nnz int, seed uint64) *COO {
	t.Helper()
	rng := NewRand(seed)
	m := NewCOO(rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Add(int32(rng.Intn(rows)), int32(rng.Intn(cols)), 1+4*rng.Float32())
	}
	return m
}

// TestRowShardsMatchesCSRGather pins RowShards to the per-worker CSR gather
// it replaced: same slices, same shard entries in the same order.
func TestRowShardsMatchesCSRGather(t *testing.T) {
	m := shardMatrix(t, 120, 40, 3000, 7)
	weights := []float64{0.4, 0.3, 0.2, 0.1}

	slices, shards, err := RowShards(m, weights)
	if err != nil {
		t.Fatal(err)
	}

	csr := NewCSRFromCOO(m)
	wantSlices, err := CutRowGrid(csr, weights)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != len(wantSlices) {
		t.Fatalf("%d slices, want %d", len(slices), len(wantSlices))
	}
	for i := range slices {
		if slices[i] != wantSlices[i] {
			t.Fatalf("slice %d = %+v, want %+v", i, slices[i], wantSlices[i])
		}
	}
	for i, sl := range wantSlices {
		var want []Rating
		for r := sl.Lo; r < sl.Hi; r++ {
			for p := csr.RowPtr[r]; p < csr.RowPtr[r+1]; p++ {
				want = append(want, Rating{U: int32(r), I: csr.Col[p], V: csr.Val[p]})
			}
		}
		got := shards[i]
		if got.Rows != m.Rows || got.Cols != m.Cols {
			t.Fatalf("shard %d dims %dx%d, want %dx%d", i, got.Rows, got.Cols, m.Rows, m.Cols)
		}
		if len(got.Entries) != len(want) {
			t.Fatalf("shard %d has %d entries, want %d", i, len(got.Entries), len(want))
		}
		for j := range want {
			if got.Entries[j] != want[j] {
				t.Fatalf("shard %d entry %d = %+v, want %+v", i, j, got.Entries[j], want[j])
			}
		}
	}
}

// TestRowShardsAppendIsolation asserts the capacity cap on shard views:
// growing one shard (as ps eviction does when an heir absorbs a dead
// worker's entries) must reallocate, never overwrite a neighbouring shard
// in the shared backing array.
func TestRowShardsAppendIsolation(t *testing.T) {
	m := shardMatrix(t, 60, 20, 1200, 9)
	_, shards, err := RowShards(m, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || len(shards[1].Entries) == 0 {
		t.Fatalf("want 2 non-empty shards, got %d", len(shards))
	}
	neighbour := shards[1].Entries[0]
	poison := Rating{U: 0, I: 0, V: -999}
	shards[0].Entries = append(shards[0].Entries, poison)
	if shards[1].Entries[0] != neighbour {
		t.Fatalf("appending to shard 0 corrupted shard 1: %+v", shards[1].Entries[0])
	}
}

// TestRowShardsBadWeights propagates cut errors.
func TestRowShardsBadWeights(t *testing.T) {
	m := shardMatrix(t, 10, 10, 50, 3)
	if _, _, err := RowShards(m, nil); err == nil {
		t.Fatal("nil weights accepted")
	}
	if _, _, err := RowShards(m, []float64{0.5, -0.5}); err == nil {
		t.Fatal("negative weight accepted")
	}
}
