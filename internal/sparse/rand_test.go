package sparse

import (
	"math"
	"testing"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 equal values", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck-at-zero stream")
	}
}

func TestRandUint64nRange(t *testing.T) {
	r := NewRand(9)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRandUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRand(1).Uint64n(0)
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(4)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandFloat32Range(t *testing.T) {
	r := NewRand(4)
	for i := 0; i < 1000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 = %v out of [0,1)", v)
		}
	}
}

func TestRandUint64nUniformity(t *testing.T) {
	r := NewRand(77)
	const buckets = 8
	const n = 80000
	var hist [buckets]int
	for i := 0; i < n; i++ {
		hist[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range hist {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(31)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
