package sparse

import (
	"sort"
	"sync"
)

// Counting/radix sort for COO entry grids. SortByRow/SortByCol used to run
// interface-dispatched sort.Slice — O(NNZ log NNZ) with a closure call per
// comparison. The (row, col) key range is known, so two stable counting
// passes (least-significant key first) sort in O(NNZ + Rows + Cols) while
// touching the entry stream sequentially, which also speeds up every grid
// rebuild that re-sorts shards. Scratch histograms and the scatter buffer
// come from a pool, so steady-state sorting allocates nothing.

// sortScratch holds the reusable buffers of one counting sort: the two key
// histograms (reused via RowCountsInto/ColCountsInto) and the scatter
// destination of the first pass.
type sortScratch struct {
	rowCounts []int
	colCounts []int
	tmp       []Rating
}

var sortScratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

// sortFallbackFactor bounds the counting sort's histogram cost: when the
// index space is more than this factor larger than the entry count, a
// counting pass would be dominated by walking mostly-empty histograms and
// the comparison sort wins. The fallback is stable too, so both paths
// produce identical orderings.
const sortFallbackFactor = 8

// sortEntries sorts m.Entries stably by (U, I) when byRow, else by (I, U).
func sortEntries(m *COO, byRow bool) {
	n := len(m.Entries)
	if n < 2 {
		return
	}
	if int64(m.Rows)+int64(m.Cols) > sortFallbackFactor*int64(n) {
		if byRow {
			sort.SliceStable(m.Entries, func(a, b int) bool {
				ea, eb := m.Entries[a], m.Entries[b]
				if ea.U != eb.U {
					return ea.U < eb.U
				}
				return ea.I < eb.I
			})
		} else {
			sort.SliceStable(m.Entries, func(a, b int) bool {
				ea, eb := m.Entries[a], m.Entries[b]
				if ea.I != eb.I {
					return ea.I < eb.I
				}
				return ea.U < eb.U
			})
		}
		return
	}

	s := sortScratchPool.Get().(*sortScratch)
	if cap(s.tmp) < n {
		s.tmp = make([]Rating, n)
	}
	tmp := s.tmp[:n]
	s.rowCounts = m.RowCountsInto(s.rowCounts)
	s.colCounts = m.ColCountsInto(s.colCounts)

	if byRow {
		scatterByCol(tmp, m.Entries, s.colCounts)
		scatterByRow(m.Entries, tmp, s.rowCounts)
	} else {
		scatterByRow(tmp, m.Entries, s.rowCounts)
		scatterByCol(m.Entries, tmp, s.colCounts)
	}
	sortScratchPool.Put(s)
}

// scatterByRow stable-scatters src into dst ordered by U. counts must hold
// per-row entry counts on entry; it is consumed (turned into offsets).
func scatterByRow(dst, src []Rating, counts []int) {
	off := 0
	for r, c := range counts {
		counts[r] = off
		off += c
	}
	for _, e := range src {
		p := counts[e.U]
		counts[e.U] = p + 1
		dst[p] = e
	}
}

// scatterByCol stable-scatters src into dst ordered by I; see scatterByRow.
func scatterByCol(dst, src []Rating, counts []int) {
	off := 0
	for c, n := range counts {
		counts[c] = off
		off += n
	}
	for _, e := range src {
		p := counts[e.I]
		counts[e.I] = p + 1
		dst[p] = e
	}
}
