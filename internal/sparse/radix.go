package sparse

import (
	"sort"
	"sync"
)

// Counting/radix sort for COO entry grids. SortByRow/SortByCol used to run
// interface-dispatched sort.Slice — O(NNZ log NNZ) with a closure call per
// comparison. The (row, col) key range is known, so two stable counting
// passes (least-significant key first) sort in O(NNZ + Rows + Cols) while
// touching the entry stream sequentially, which also speeds up every grid
// rebuild that re-sorts shards. Scratch histograms and the scatter buffer
// come from a pool, so steady-state sorting allocates nothing.

// sortScratch holds the reusable buffers of one counting sort: the two key
// histograms (reused via RowCountsInto/ColCountsInto) and the scatter
// destination of the first pass.
type sortScratch struct {
	rowCounts []int
	colCounts []int
	tmp       []Rating
}

var sortScratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

// sortFallbackFactor bounds the counting sort's histogram cost: when the
// index space is more than this factor larger than the entry count, a
// counting pass would be dominated by walking mostly-empty histograms and
// the comparison sort wins. The fallback is stable too, so both paths
// produce identical orderings.
const sortFallbackFactor = 8

// sortEntries sorts m.Entries stably by (U, I) when byRow, else by (I, U).
func sortEntries(m *COO, byRow bool) {
	sortRatings(m.Entries, m.Rows, m.Cols, byRow)
}

// SortRatings stably sorts a raw entry slice by (U, I) — row-major, the
// prefetch-friendly CSR traversal order: within each row the column
// indices ascend, so a sweep walks Q forward instead of jumping around
// the column space. Indices must satisfy 0 ≤ U < rows, 0 ≤ I < cols.
// Used by the fast-math training mode on per-worker row shards.
func SortRatings(entries []Rating, rows, cols int) {
	sortRatings(entries, rows, cols, true)
}

// sortRatings is the slice-form core of sortEntries: the same two stable
// counting passes (or the same stable comparison fallback for very sparse
// index spaces), operating on any entry slice rather than a *COO.
func sortRatings(entries []Rating, rows, cols int, byRow bool) {
	n := len(entries)
	if n < 2 {
		return
	}
	if int64(rows)+int64(cols) > sortFallbackFactor*int64(n) {
		if byRow {
			sort.SliceStable(entries, func(a, b int) bool {
				ea, eb := entries[a], entries[b]
				if ea.U != eb.U {
					return ea.U < eb.U
				}
				return ea.I < eb.I
			})
		} else {
			sort.SliceStable(entries, func(a, b int) bool {
				ea, eb := entries[a], entries[b]
				if ea.I != eb.I {
					return ea.I < eb.I
				}
				return ea.U < eb.U
			})
		}
		return
	}

	s := sortScratchPool.Get().(*sortScratch)
	if cap(s.tmp) < n {
		s.tmp = make([]Rating, n)
	}
	tmp := s.tmp[:n]
	s.rowCounts = countRatings(s.rowCounts, entries, rows, true)
	s.colCounts = countRatings(s.colCounts, entries, cols, false)

	if byRow {
		scatterByCol(tmp, entries, s.colCounts)
		scatterByRow(entries, tmp, s.rowCounts)
	} else {
		scatterByRow(tmp, entries, s.rowCounts)
		scatterByCol(entries, tmp, s.colCounts)
	}
	sortScratchPool.Put(s)
}

// countRatings fills dst (grown as needed to size) with per-row (byRow) or
// per-column entry counts, mirroring COO.RowCountsInto for raw slices.
func countRatings(dst []int, entries []Rating, size int, byRow bool) []int {
	if cap(dst) < size {
		dst = make([]int, size)
	}
	dst = dst[:size]
	for i := range dst {
		dst[i] = 0
	}
	if byRow {
		for _, e := range entries {
			dst[e.U]++
		}
	} else {
		for _, e := range entries {
			dst[e.I]++
		}
	}
	return dst
}

// scatterByRow stable-scatters src into dst ordered by U. counts must hold
// per-row entry counts on entry; it is consumed (turned into offsets).
func scatterByRow(dst, src []Rating, counts []int) {
	off := 0
	for r, c := range counts {
		counts[r] = off
		off += c
	}
	for _, e := range src {
		p := counts[e.U]
		counts[e.U] = p + 1
		dst[p] = e
	}
}

// scatterByCol stable-scatters src into dst ordered by I; see scatterByRow.
func scatterByCol(dst, src []Rating, counts []int) {
	off := 0
	for c, n := range counts {
		counts[c] = off
		off += n
	}
	for _, e := range src {
		p := counts[e.I]
		counts[e.I] = p + 1
		dst[p] = e
	}
}
