package sparse

import "math"

// Rand is a small, allocation-free deterministic PRNG (xoshiro256**)
// shared by the sparse and dataset packages. The training pipeline needs
// reproducible shuffles and initialisations across runs and across worker
// counts, which math/rand's global state cannot guarantee, and the module
// is restricted to the standard library, so we carry our own generator.
type Rand struct {
	s [4]uint64
}

// NewRand seeds a generator from a single 64-bit seed using splitmix64, as
// recommended by the xoshiro authors; any seed (including 0) is valid.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		// lint:invariant mirrors math/rand's own contract: a zero bound is API misuse on the generator hot path.
		panic("sparse: Uint64n(0)")
	}
	// Lemire's nearly-divisionless method with a rejection loop to remove
	// modulo bias.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform value in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		// lint:invariant mirrors math/rand.Intn's contract: non-positive n is API misuse.
		panic("sparse: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// transform (only one of the pair is used; throughput is not critical for
// initialisation paths).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}
