// Package sparse provides the sparse rating-matrix representations used
// throughout HCC-MF: coordinate (COO) triplet storage for streaming SGD
// updates, compressed sparse row (CSR) indexes for row-grid partitioning,
// deterministic shuffling, and the row/column grids that the DataManager
// hands to workers.
package sparse

import (
	"errors"
	"fmt"
	"math"
)

// Rating is one observed entry of the rating matrix R: user u rated item i
// with value v. Row/column indexes are 0-based.
type Rating struct {
	U int32
	I int32
	V float32
}

// COO is a rating matrix in coordinate form. It is the canonical training
// container: SGD kernels stream over Entries in storage order, so the order
// of Entries is significant (shuffling changes training behaviour).
type COO struct {
	Rows    int
	Cols    int
	Entries []Rating
}

// NewCOO returns an empty COO with the given dimensions and capacity hint.
func NewCOO(rows, cols, capHint int) *COO {
	if capHint < 0 {
		capHint = 0
	}
	return &COO{Rows: rows, Cols: cols, Entries: make([]Rating, 0, capHint)}
}

// NNZ reports the number of stored entries.
func (m *COO) NNZ() int { return len(m.Entries) }

// Add appends one rating. It panics if the coordinate is out of range; use
// Append for checked insertion.
func (m *COO) Add(u, i int32, v float32) {
	if u < 0 || int(u) >= m.Rows || i < 0 || int(i) >= m.Cols {
		// lint:invariant Add is the unchecked hot path for generators whose coordinates are in-range by construction; Append is the checked sibling for parsed input.
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d matrix", u, i, m.Rows, m.Cols))
	}
	m.Entries = append(m.Entries, Rating{U: u, I: i, V: v})
}

// CheckRange reports the out-of-range error Append would return for the
// coordinate (u,i) in a rows×cols matrix, or nil when it is in range. The
// dataset parsers share it so that a range error carries the same text
// whether it comes from Append or from a parser worker that range-checks
// before it owns a matrix.
func CheckRange(u, i int32, rows, cols int) error {
	if u < 0 || int(u) >= rows || i < 0 || int(i) >= cols {
		return fmt.Errorf("sparse: entry (%d,%d) outside %dx%d matrix", u, i, rows, cols)
	}
	return nil
}

// Append appends one rating, reporting an error when the coordinate is out
// of range.
func (m *COO) Append(u, i int32, v float32) error {
	if err := CheckRange(u, i, m.Rows, m.Cols); err != nil {
		return err
	}
	m.Entries = append(m.Entries, Rating{U: u, I: i, V: v})
	return nil
}

// Clone returns a deep copy of the matrix.
func (m *COO) Clone() *COO {
	out := &COO{Rows: m.Rows, Cols: m.Cols, Entries: make([]Rating, len(m.Entries))}
	copy(out.Entries, m.Entries)
	return out
}

// Transpose returns a new COO with rows and columns exchanged. HCC-MF uses
// it to switch between row-grid and column-grid partitioning (the paper
// picks the grid along the longer dimension).
func (m *COO) Transpose() *COO {
	out := &COO{Rows: m.Cols, Cols: m.Rows, Entries: make([]Rating, len(m.Entries))}
	for idx, e := range m.Entries {
		out.Entries[idx] = Rating{U: e.I, I: e.U, V: e.V}
	}
	return out
}

// MeanRating returns the arithmetic mean of all stored ratings, used to
// initialise feature matrices so that p·q starts near the global mean.
func (m *COO) MeanRating() float64 {
	if len(m.Entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range m.Entries {
		sum += float64(e.V)
	}
	return sum / float64(len(m.Entries))
}

// Validate checks structural invariants: all coordinates in range and no
// NaN/Inf ratings. It is used by loaders and property tests.
func (m *COO) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return errors.New("sparse: negative dimension")
	}
	for idx, e := range m.Entries {
		if e.U < 0 || int(e.U) >= m.Rows {
			return fmt.Errorf("sparse: entry %d row %d out of range [0,%d)", idx, e.U, m.Rows)
		}
		if e.I < 0 || int(e.I) >= m.Cols {
			return fmt.Errorf("sparse: entry %d col %d out of range [0,%d)", idx, e.I, m.Cols)
		}
		if math.IsNaN(float64(e.V)) || math.IsInf(float64(e.V), 0) {
			return fmt.Errorf("sparse: entry %d has non-finite rating %v", idx, e.V)
		}
	}
	return nil
}

// RowCounts returns, for each row, the number of stored entries. The
// DataManager uses these histograms to cut balanced row grids.
func (m *COO) RowCounts() []int { return m.RowCountsInto(nil) }

// RowCountsInto fills counts with per-row entry counts and returns it,
// reusing the caller's buffer when it has capacity m.Rows and allocating
// only otherwise. The radix grid sort and the sharding path call it with
// pooled buffers so grid rebuilds stop allocating histograms per call.
func (m *COO) RowCountsInto(counts []int) []int {
	if cap(counts) < m.Rows {
		counts = make([]int, m.Rows)
	}
	counts = counts[:m.Rows]
	clear(counts)
	for _, e := range m.Entries {
		counts[e.U]++
	}
	return counts
}

// ColCounts returns per-column entry counts.
func (m *COO) ColCounts() []int { return m.ColCountsInto(nil) }

// ColCountsInto is the caller-buffer variant of ColCounts; see
// RowCountsInto.
func (m *COO) ColCountsInto(counts []int) []int {
	if cap(counts) < m.Cols {
		counts = make([]int, m.Cols)
	}
	counts = counts[:m.Cols]
	clear(counts)
	for _, e := range m.Entries {
		counts[e.I]++
	}
	return counts
}

// SortByRow sorts entries stably by (row, col). FPSGD-style kernels rely
// on this "block sorting by row" to improve cache hit rate (the paper
// applies the same trick to cuMF_SGD's grid problem). The sort is a
// two-pass LSD counting sort keyed on the known (row, col) range — O(NNZ +
// Rows + Cols) instead of O(NNZ log NNZ) — with a stable comparison-sort
// fallback for degenerate shapes whose index space dwarfs the entry count.
func (m *COO) SortByRow() { sortEntries(m, true) }

// SortByCol sorts entries stably by (col, row).
func (m *COO) SortByCol() { sortEntries(m, false) }

// Shuffle permutes entries with the Fisher-Yates algorithm driven by the
// given source, making SGD's sampling order deterministic per seed.
func (m *COO) Shuffle(rng *Rand) {
	for i := len(m.Entries) - 1; i > 0; i-- {
		j := int(rng.Uint64n(uint64(i + 1)))
		m.Entries[i], m.Entries[j] = m.Entries[j], m.Entries[i]
	}
}

// SplitTrainTest deterministically splits the matrix into train and test
// sets, with approximately testFrac of entries (per the rng) in the test
// split. Dimensions are preserved. testFrac reaches this point straight
// from CLI flags and config, so an out-of-range value is a returned
// error, not a panic.
func (m *COO) SplitTrainTest(rng *Rand, testFrac float64) (train, test *COO, err error) {
	if testFrac < 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("sparse: testFrac %v out of [0,1)", testFrac)
	}
	train = NewCOO(m.Rows, m.Cols, len(m.Entries))
	test = NewCOO(m.Rows, m.Cols, int(float64(len(m.Entries))*testFrac)+1)
	threshold := uint64(testFrac * float64(math.MaxUint64))
	for _, e := range m.Entries {
		if rng.Uint64() < threshold {
			test.Entries = append(test.Entries, e)
		} else {
			train.Entries = append(train.Entries, e)
		}
	}
	return train, test, nil
}
