package sparse

// Row-grid sharding. BuildWorkerConfs used to materialise one COO copy per
// worker (a full CSR build plus a per-worker gather: O(workers × alloc)
// and ~2 extra passes over the entry stream). RowShards replaces that with
// views: every shard's Entries is a sub-slice of one shared row-major
// backing array, produced by a single counting-sort scatter straight from
// the COO. The views are capacity-capped (backing[lo:hi:hi]) so a consumer
// that appends to a shard — the ps eviction path merges a dead worker's
// shard into its heir — reallocates instead of stomping its neighbour.

// RowStarts returns the CSR-style row prefix index of m: starts[r] is the
// position of row r's first entry in row-major stable order, and
// starts[m.Rows] == m.NNZ().
func RowStarts(m *COO) []int64 {
	starts := make([]int64, m.Rows+1)
	for _, e := range m.Entries {
		starts[e.U+1]++
	}
	for r := 0; r < m.Rows; r++ {
		starts[r+1] += starts[r]
	}
	return starts
}

// RowShards cuts m into len(weights) contiguous row-range shards whose nnz
// counts match the weights as closely as a contiguous cut allows (the same
// greedy cut as CutRowGrid). Entries within each shard are in row-major
// order, stable within a row — identical to gathering from a CSR.
//
// All shards share one backing array; each view's capacity is capped at
// its own end, so growing one shard never corrupts another.
func RowShards(m *COO, weights []float64) ([]Slice, []*COO, error) {
	starts := RowStarts(m)
	slices, err := cutGrid(starts, m.Rows, weights)
	if err != nil {
		return nil, nil, err
	}
	backing := make([]Rating, len(m.Entries))
	next := make([]int64, m.Rows)
	copy(next, starts[:m.Rows])
	for _, e := range m.Entries {
		pos := next[e.U]
		next[e.U]++
		backing[pos] = e
	}
	shards := make([]*COO, len(slices))
	for i, sl := range slices {
		lo, hi := starts[sl.Lo], starts[sl.Hi]
		shards[i] = &COO{Rows: m.Rows, Cols: m.Cols, Entries: backing[lo:hi:hi]}
	}
	return slices, shards, nil
}
