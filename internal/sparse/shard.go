package sparse

import "sync"

// Row-grid sharding. BuildWorkerConfs used to materialise one COO copy per
// worker (a full CSR build plus a per-worker gather: O(workers × alloc)
// and ~2 extra passes over the entry stream). RowShards replaces that with
// views: every shard's Entries is a sub-slice of one shared row-major
// backing array, produced by a single counting-sort scatter straight from
// the COO. The views are capacity-capped (backing[lo:hi:hi]) so a consumer
// that appends to a shard — the ps eviction path merges a dead worker's
// shard into its heir — reallocates instead of stomping its neighbour.

// RowStarts returns the CSR-style row prefix index of m: starts[r] is the
// position of row r's first entry in row-major stable order, and
// starts[m.Rows] == m.NNZ().
func RowStarts(m *COO) []int64 {
	return rowStartsInto(nil, m)
}

// rowStartsInto is the caller-buffer variant of RowStarts, mirroring
// RowCountsInto: it reuses starts when it has capacity m.Rows+1.
func rowStartsInto(starts []int64, m *COO) []int64 {
	if cap(starts) < m.Rows+1 {
		starts = make([]int64, m.Rows+1)
	}
	starts = starts[:m.Rows+1]
	clear(starts)
	for _, e := range m.Entries {
		starts[e.U+1]++
	}
	for r := 0; r < m.Rows; r++ {
		starts[r+1] += starts[r]
	}
	return starts
}

// shardScratch pools the two per-call histograms of RowShards (prefix
// index and scatter cursor), so grid rebuilds — the eviction path re-shards
// on every worker failure — stop allocating histograms per call. The shard
// backing array itself is NOT pooled: it is handed to the caller.
type shardScratch struct {
	starts, next []int64
}

var shardScratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// RowShards cuts m into len(weights) contiguous row-range shards whose nnz
// counts match the weights as closely as a contiguous cut allows (the same
// greedy cut as CutRowGrid). Entries within each shard are in row-major
// order, stable within a row — identical to gathering from a CSR.
//
// All shards share one backing array; each view's capacity is capped at
// its own end, so growing one shard never corrupts another.
func RowShards(m *COO, weights []float64) ([]Slice, []*COO, error) {
	sc := shardScratchPool.Get().(*shardScratch)
	defer shardScratchPool.Put(sc)
	sc.starts = rowStartsInto(sc.starts, m)
	starts := sc.starts
	slices, err := cutGrid(starts, m.Rows, weights)
	if err != nil {
		return nil, nil, err
	}
	backing := make([]Rating, len(m.Entries))
	if cap(sc.next) < m.Rows {
		sc.next = make([]int64, m.Rows)
	}
	next := sc.next[:m.Rows]
	copy(next, starts[:m.Rows])
	for _, e := range m.Entries {
		pos := next[e.U]
		next[e.U]++
		backing[pos] = e
	}
	shards := make([]*COO, len(slices))
	for i, sl := range slices {
		lo, hi := starts[sl.Lo], starts[sl.Hi]
		shards[i] = &COO{Rows: m.Rows, Cols: m.Cols, Entries: backing[lo:hi:hi]}
	}
	return slices, shards, nil
}
