// Package metrics implements the paper's evaluation quantities:
// "computing power" (Eq. 8 — rating updates per second sustained over a
// run) and "computing power utilization" (actual over ideal, where the
// ideal is the sum of every processor's standalone computing power). It
// also carries the convergence-curve record used for Figure 7.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ComputingPower implements Eq. 8: nnz·epochs / cost_time, in updates/s.
func ComputingPower(nnz int64, epochs int, costTime float64) float64 {
	if costTime <= 0 {
		// lint:invariant inputs are simulator outputs (cost-model times), never user input; a non-positive time means the simulation itself broke.
		panic(fmt.Sprintf("metrics: cost time %v", costTime))
	}
	if epochs < 0 || nnz < 0 {
		// lint:invariant workload terms come from a dataset spec validated at generation time.
		panic(fmt.Sprintf("metrics: negative workload nnz=%d epochs=%d", nnz, epochs))
	}
	return float64(nnz) * float64(epochs) / costTime
}

// IdealPower sums standalone computing powers — the denominator of the
// utilization metric.
func IdealPower(perDevice []float64) float64 {
	var sum float64
	for i, p := range perDevice {
		if p <= 0 {
			// lint:invariant device powers are computed from calibrated update rates; non-positive means a corrupted profile.
			panic(fmt.Sprintf("metrics: device %d power %v", i, p))
		}
		sum += p
	}
	return sum
}

// Utilization reports actual/ideal, the paper's Table 4 headline metric.
func Utilization(actual, ideal float64) float64 {
	if ideal <= 0 {
		// lint:invariant see ComputingPower: operands are simulator outputs only.
		panic(fmt.Sprintf("metrics: ideal power %v", ideal))
	}
	if actual < 0 {
		// lint:invariant see ComputingPower: operands are simulator outputs only.
		panic(fmt.Sprintf("metrics: actual power %v", actual))
	}
	return actual / ideal
}

// ConvergencePoint is one sample of a training curve.
type ConvergencePoint struct {
	Epoch int
	// Time is the cumulative (simulated) training time in seconds.
	Time float64
	// RMSE is the held-out root mean squared error after the epoch.
	RMSE float64
}

// Curve is a labelled convergence trajectory (one line of Figure 7).
type Curve struct {
	Label  string
	Points []ConvergencePoint
}

// Append records one epoch's sample.
func (c *Curve) Append(epoch int, time, rmse float64) {
	c.Points = append(c.Points, ConvergencePoint{Epoch: epoch, Time: time, RMSE: rmse})
}

// Final reports the last RMSE (0 if empty).
func (c *Curve) Final() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].RMSE
}

// TimeToRMSE reports the earliest cumulative time at which the curve
// reaches target or below, and whether it ever does. Speedup claims in
// Figure 7(d–f) compare these times across methods.
func (c *Curve) TimeToRMSE(target float64) (float64, bool) {
	for _, p := range c.Points {
		if p.RMSE <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// Format renders the curve as "epoch time rmse" lines.
func (c *Curve) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", c.Label)
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%4d %12.4f %10.6f\n", p.Epoch, p.Time, p.RMSE)
	}
	return b.String()
}

// Speedup reports how much faster a is than b at reaching the given RMSE:
// time_b / time_a. The second return is false when either curve never
// reaches the target.
func Speedup(a, b *Curve, target float64) (float64, bool) {
	ta, oka := a.TimeToRMSE(target)
	tb, okb := b.TimeToRMSE(target)
	if !oka || !okb || ta <= 0 {
		return 0, false
	}
	return tb / ta, true
}

// TimeToRMSEInterp is TimeToRMSE with linear interpolation between epoch
// samples, removing the epoch-granularity cliff from speedup comparisons.
func (c *Curve) TimeToRMSEInterp(target float64) (float64, bool) {
	for i, p := range c.Points {
		if p.RMSE > target {
			continue
		}
		if i == 0 {
			return p.Time, true
		}
		prev := c.Points[i-1]
		span := prev.RMSE - p.RMSE
		if span <= 0 {
			return p.Time, true
		}
		f := (prev.RMSE - target) / span
		return prev.Time + f*(p.Time-prev.Time), true
	}
	return 0, false
}

// RobustSpeedup reports the median of interpolated time-to-target ratios
// (time_b / time_a) over several targets spanning the RMSE range both
// curves cover. It is the stable version of the paper's Figure 7(d–f)
// speedup arrows: a single target sits on an epoch boundary and flips
// with the seed; the median over the shared descent does not.
func RobustSpeedup(a, b *Curve, nTargets int) (float64, bool) {
	if len(a.Points) == 0 || len(b.Points) == 0 || nTargets < 1 {
		return 0, false
	}
	lo := math.Max(minRMSE(a), minRMSE(b))
	hi := math.Min(a.Points[0].RMSE, b.Points[0].RMSE)
	if !(hi > lo) {
		return 0, false
	}
	var ratios []float64
	for i := 1; i <= nTargets; i++ {
		// Sample strictly inside (lo, hi); endpoints are degenerate.
		target := lo + (hi-lo)*float64(i)/float64(nTargets+1)
		ta, oka := a.TimeToRMSEInterp(target)
		tb, okb := b.TimeToRMSEInterp(target)
		if oka && okb && ta > 0 {
			ratios = append(ratios, tb/ta)
		}
	}
	if len(ratios) == 0 {
		return 0, false
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2], true
}

func minRMSE(c *Curve) float64 {
	m := math.Inf(1)
	for _, p := range c.Points {
		if p.RMSE < m {
			m = p.RMSE
		}
	}
	return m
}
