package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestComputingPowerEq8(t *testing.T) {
	// Paper Table 4 sanity: 99072112 nnz × 20 epochs in ~0.889s ≈ 2.23G.
	got := ComputingPower(99072112, 20, 0.889)
	if got < 2.2e9 || got > 2.3e9 {
		t.Fatalf("ComputingPower = %v", got)
	}
}

func TestComputingPowerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero time did not panic")
		}
	}()
	ComputingPower(1, 1, 0)
}

func TestComputingPowerNegativeWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative nnz did not panic")
		}
	}()
	ComputingPower(-1, 1, 1)
}

func TestIdealPowerAndUtilization(t *testing.T) {
	ideal := IdealPower([]float64{348790567, 272502189.3, 918333483.2, 1052866849})
	if math.Abs(ideal-2592493088.5) > 1 {
		t.Fatalf("IdealPower = %v, want Table 4's 2592493089", ideal)
	}
	u := Utilization(2228476993, ideal)
	if u < 0.85 || u > 0.87 {
		t.Fatalf("Utilization = %v, want ≈ 0.86 (paper: 86%%)", u)
	}
}

func TestUtilizationValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero ideal did not panic")
			}
		}()
		Utilization(1, 0)
	}()
	defer func() {
		if recover() == nil {
			t.Error("negative actual did not panic")
		}
	}()
	Utilization(-1, 1)
}

func TestIdealPowerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive device power did not panic")
		}
	}()
	IdealPower([]float64{1, 0})
}

func TestCurveAppendFinal(t *testing.T) {
	var c Curve
	if c.Final() != 0 {
		t.Fatal("empty curve Final != 0")
	}
	c.Label = "HCC"
	c.Append(1, 0.5, 1.2)
	c.Append(2, 1.0, 0.95)
	if c.Final() != 0.95 {
		t.Fatalf("Final = %v", c.Final())
	}
}

func TestTimeToRMSE(t *testing.T) {
	var c Curve
	c.Append(1, 1, 1.5)
	c.Append(2, 2, 1.0)
	c.Append(3, 3, 0.9)
	if tt, ok := c.TimeToRMSE(1.0); !ok || tt != 2 {
		t.Fatalf("TimeToRMSE(1.0) = %v,%v", tt, ok)
	}
	if _, ok := c.TimeToRMSE(0.5); ok {
		t.Fatal("unreachable target reported reached")
	}
}

func TestSpeedup(t *testing.T) {
	fast := &Curve{Label: "hcc"}
	slow := &Curve{Label: "fpsgd"}
	for e := 1; e <= 10; e++ {
		fast.Append(e, float64(e)*0.5, 1.5-0.1*float64(e))
		slow.Append(e, float64(e)*1.5, 1.5-0.1*float64(e))
	}
	s, ok := Speedup(fast, slow, 1.0)
	if !ok {
		t.Fatal("speedup not computable")
	}
	if math.Abs(s-3) > 1e-9 {
		t.Fatalf("Speedup = %v, want 3", s)
	}
	if _, ok := Speedup(fast, slow, 0.01); ok {
		t.Fatal("unreachable target yielded speedup")
	}
}

func TestTimeToRMSEInterp(t *testing.T) {
	var c Curve
	c.Append(1, 10, 2.0)
	c.Append(2, 20, 1.0)
	c.Append(3, 30, 0.5)
	// Exactly on a sample.
	if tt, ok := c.TimeToRMSEInterp(1.0); !ok || tt != 20 {
		t.Fatalf("interp(1.0) = %v,%v", tt, ok)
	}
	// Halfway between samples: RMSE 1.5 sits midway 2.0→1.0, so time 15.
	if tt, ok := c.TimeToRMSEInterp(1.5); !ok || math.Abs(tt-15) > 1e-12 {
		t.Fatalf("interp(1.5) = %v,%v", tt, ok)
	}
	// Above the first point: reached immediately.
	if tt, ok := c.TimeToRMSEInterp(3.0); !ok || tt != 10 {
		t.Fatalf("interp(3.0) = %v,%v", tt, ok)
	}
	// Never reached.
	if _, ok := c.TimeToRMSEInterp(0.1); ok {
		t.Fatal("unreachable target reported reached")
	}
}

func TestTimeToRMSEInterpFlatSegment(t *testing.T) {
	var c Curve
	c.Append(1, 10, 1.0)
	c.Append(2, 20, 1.0) // no descent
	c.Append(3, 30, 0.5)
	if tt, ok := c.TimeToRMSEInterp(1.0); !ok || tt != 10 {
		t.Fatalf("flat-segment interp = %v,%v", tt, ok)
	}
}

func TestRobustSpeedupProportionalClocks(t *testing.T) {
	// Identical descent, 3x slower clock: every target ratio is exactly 3.
	fast, slow := &Curve{}, &Curve{}
	for e := 1; e <= 10; e++ {
		rmse := 2.0 - 0.15*float64(e)
		fast.Append(e, float64(e), rmse)
		slow.Append(e, 3*float64(e), rmse)
	}
	s, ok := RobustSpeedup(fast, slow, 7)
	if !ok || math.Abs(s-3) > 1e-9 {
		t.Fatalf("RobustSpeedup = %v,%v, want 3", s, ok)
	}
	// Symmetric: the slow curve is 1/3 as fast.
	s, ok = RobustSpeedup(slow, fast, 7)
	if !ok || math.Abs(s-1.0/3.0) > 1e-9 {
		t.Fatalf("inverse RobustSpeedup = %v", s)
	}
}

func TestRobustSpeedupDisjointBands(t *testing.T) {
	// One curve entirely below the other: no shared band, not computable.
	low, high := &Curve{}, &Curve{}
	for e := 1; e <= 5; e++ {
		low.Append(e, float64(e), 0.5-0.01*float64(e))
		high.Append(e, float64(e), 2.0-0.01*float64(e))
	}
	if _, ok := RobustSpeedup(low, high, 5); ok {
		t.Fatal("disjoint bands reported a speedup")
	}
}

func TestRobustSpeedupDegenerate(t *testing.T) {
	var empty Curve
	var one Curve
	one.Append(1, 1, 1)
	if _, ok := RobustSpeedup(&empty, &one, 5); ok {
		t.Fatal("empty curve accepted")
	}
	if _, ok := RobustSpeedup(&one, &one, 0); ok {
		t.Fatal("zero targets accepted")
	}
	// A single flat point shares no descent with itself.
	if _, ok := RobustSpeedup(&one, &one, 5); ok {
		t.Fatal("flat curve produced a speedup")
	}
}

func TestCurveFormat(t *testing.T) {
	c := Curve{Label: "test-curve"}
	c.Append(1, 0.25, 0.9)
	out := c.Format()
	if !strings.Contains(out, "test-curve") || !strings.Contains(out, "0.9") {
		t.Fatalf("Format output:\n%s", out)
	}
}
