package ps

import (
	"fmt"
	"sync"

	"hccmf/internal/comm"
	"hccmf/internal/mf"
	"hccmf/internal/obs"
	"hccmf/internal/sparse"
	"hccmf/internal/trace"
)

// updateOneLocal applies one SGD step against the worker-local factors.
func updateOneLocal(f *mf.Factors, e sparse.Rating, h mf.HyperParams) {
	mf.UpdateOne(f.PRow(e.U), f.QRow(e.I), e.V, h)
}

// Asynchronous computing-transmission (paper Section 3.4, Strategy 3;
// Figure 6): each worker runs Streams concurrent pull→compute→push
// pipelines. A stream owns one item-range slice of Q: it pulls only that
// slice, trains the shard entries whose items fall inside it, and pushes
// the slice back — so the per-epoch feature traffic stays one Q per worker
// while the exposed transfer time drops to ~1/Streams.
//
// Two consequences the paper calls out are reproduced faithfully:
//
//   - Streams of one worker update the same local P rows concurrently
//     (a user's ratings span item slices). This is lock-free by design —
//     the Hogwild! argument — and some updates are overwritten, which is
//     the "small part of the training results is lost" effect of
//     Figure 7(b)/(e). Like the Hogwild engines, these races are
//     intentional; tests exercising them are skipped under -race.
//   - The server synchronises mid-epoch: a Q slice is folded as soon as
//     every worker's stream has pushed it, overlapping the remaining
//     slices' computation instead of queueing after the slowest worker.

// runEpochAsync executes one epoch in asynchronous mode.
func (c *Cluster) runEpochAsync(epoch, total int) error {
	streams := c.cfg.Strategy.Streams
	c.snapshotBaseQ()

	coord := c.coordinator(streams)
	slices := coord.slices

	workers, errs := c.runPhase(func(ws *workerState) error {
		return c.workerEpochAsync(ws, coord, slices, epoch, total)
	})
	evicted, err := c.settle(epoch, workers, errs)
	if err != nil {
		return err
	}
	// Slices an evicted worker never delivered must still fold — the
	// survivors' pushes are in the buffers waiting on its arrival count.
	for _, ws := range evicted {
		coord.drop(ws)
	}
	// Publish once the epoch's folds have all landed. Mid-epoch folds need
	// no earlier publish: within an epoch every pull of a slice precedes
	// its fold, so remote pulls correctly see the epoch-start model.
	return c.publishGlobal(!c.cfg.Strategy.QOnly || epoch == total-1)
}

// workerEpochAsync runs one worker's stream pipelines for one epoch.
func (c *Cluster) workerEpochAsync(ws *workerState, coord *sliceCoordinator, slices []itemSlice, epoch, total int) error {
	h := c.hyperFor(epoch)
	chunks := ws.sliceChunks(slices)
	var wg sync.WaitGroup
	errs := make([]error, len(slices))
	for sj := range slices {
		wg.Add(1)
		go func(sj int) {
			defer wg.Done()
			errs[sj] = c.streamRun(ws, coord, slices[sj], chunks[sj], sj, h)
		}(sj)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// The worker's P rows travel once, on the final push (Q-only) or every
	// epoch (naive mode), after all streams have quiesced.
	if !c.cfg.Strategy.QOnly || epoch == total-1 {
		if err := c.pushP(ws, epoch, total); err != nil {
			return err
		}
		c.foldP(ws, epoch, total)
	}
	return nil
}

// streamRun is one pull→compute→push pipeline over an item slice.
func (c *Cluster) streamRun(ws *workerState, coord *sliceCoordinator, sl itemSlice, chunk []sparse.Rating, sj int, h mf.HyperParams) error {
	k := c.cfg.K
	lo, hi := sl.lo*k, sl.hi*k
	enc := c.cfg.Strategy.Encoding
	tr := c.transportFor(ws)

	// Pull the Q slice. Safe concurrently: within an epoch a slice is
	// folded only after every worker (hence this one) has pushed it, and
	// every push follows the pull, so no fold can precede any pull of the
	// same slice.
	span := c.observer.Span(obs.ProcReal, ws.conf.Name, "ps", "pull")
	st, err := tr.Pull(ws.local.Q[lo:hi], c.global.Q[lo:hi], comm.Xfer{
		Shard: comm.GlobalShard(comm.MatrixQ, lo, hi),
		Enc:   enc,
	})
	c.account(st)
	c.metrics.ObservePhase(trace.Pull, span.EndArg("slice", float64(sj)))
	if err != nil {
		return fmt.Errorf("ps: async pull slice %d for %q: %v", sj, ws.conf.Name, err)
	}

	// Compute. Concurrent streams share ws.local.P — deliberately
	// unsynchronised (see the package comment above).
	span = c.observer.Span(obs.ProcReal, ws.conf.Name, "ps", "compute")
	for _, e := range chunk {
		updateOneLocal(ws.local, e, h)
	}
	c.metrics.ObservePhase(trace.Compute, span.EndArg("slice", float64(sj)))

	// Push the slice into the worker's push buffer.
	span = c.observer.Span(obs.ProcReal, ws.conf.Name, "ps", "push")
	st, err = tr.Push(ws.pushQ[lo:hi], ws.local.Q[lo:hi], comm.Xfer{
		Shard: comm.WorkerShard(comm.MatrixQ, ws.id, lo, hi),
		Enc:   enc,
	})
	c.account(st)
	c.metrics.ObservePhase(trace.Push, span.EndArg("slice", float64(sj)))
	if err != nil {
		return fmt.Errorf("ps: async push slice %d for %q: %v", sj, ws.conf.Name, err)
	}

	// Tell the server; it folds the slice once all workers delivered it.
	coord.arrive(ws, sj)
	return nil
}

// pushP uploads the worker's P rows (final Q-only push, or every naive-
// mode epoch).
func (c *Cluster) pushP(ws *workerState, epoch, total int) error {
	enc := c.cfg.Strategy.Encoding
	var src []float32
	var shard comm.Shard
	if c.cfg.Strategy.QOnly {
		lo, hi := ws.conf.RowLo*c.cfg.K, ws.conf.RowHi*c.cfg.K
		src = ws.local.P[lo:hi]
		shard = comm.WorkerShard(comm.MatrixP, ws.id, lo, hi)
	} else {
		src = ws.local.P
		shard = comm.WorkerShard(comm.MatrixP, ws.id, 0, len(ws.local.P))
	}
	st, err := c.transportFor(ws).Push(ws.pushP, src, comm.Xfer{Shard: shard, Enc: enc})
	c.account(st)
	if err != nil {
		return fmt.Errorf("ps: push P for %q: %v", ws.conf.Name, err)
	}
	return nil
}

// foldP lands the worker's authoritative P rows in the global model.
// Row-grid ranges are disjoint, so concurrent workers never collide.
func (c *Cluster) foldP(ws *workerState, epoch, total int) {
	lo, hi := ws.conf.RowLo*c.cfg.K, ws.conf.RowHi*c.cfg.K
	if c.cfg.Strategy.QOnly {
		copy(c.global.P[lo:hi], ws.pushP)
	} else {
		copy(c.global.P[lo:hi], ws.pushP[lo:hi])
	}
}

// itemSlice is one stream's contiguous item range [lo, hi).
type itemSlice struct{ lo, hi int }

// itemSlices cuts n items into s contiguous slices (the last absorbs the
// remainder). s is clamped to [1, n].
func itemSlices(n, s int) []itemSlice {
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	out := make([]itemSlice, s)
	for j := 0; j < s; j++ {
		out[j] = itemSlice{lo: j * n / s, hi: (j + 1) * n / s}
	}
	return out
}

// sliceChunks buckets the worker's shard entries by item slice, caching
// the result (the slicing is stable across epochs).
func (ws *workerState) sliceChunks(slices []itemSlice) [][]sparse.Rating {
	if len(ws.chunks) == len(slices) {
		return ws.chunks
	}
	chunks := make([][]sparse.Rating, len(slices))
	sliceOf := func(item int32) int {
		for j, sl := range slices {
			if int(item) < sl.hi {
				return j
			}
		}
		return len(slices) - 1
	}
	for _, e := range ws.conf.Shard.Entries {
		j := sliceOf(e.I)
		chunks[j] = append(chunks[j], e)
	}
	ws.chunks = chunks
	return chunks
}

// sliceCoordinator is the server's mid-epoch sync bookkeeping: it counts
// per-slice pushes and folds a slice conflict-aware once all workers
// delivered it. arrived remembers who pushed what, so evicting a worker
// can release exactly the slices it never delivered.
type sliceCoordinator struct {
	cluster *Cluster
	slices  []itemSlice
	mu      sync.Mutex
	pending []int
	arrived []map[*workerState]bool
}

// coordinator returns the epoch's slice coordinator, reusing the previous
// epoch's allocation (slices, counters, arrival maps) when the stream count
// is unchanged; only the bookkeeping is rewound each epoch.
func (c *Cluster) coordinator(streams int) *sliceCoordinator {
	sc := c.coord
	if sc == nil || c.coordStreams != streams {
		slices := itemSlices(c.cfg.N, streams)
		sc = &sliceCoordinator{
			cluster: c,
			slices:  slices,
			pending: make([]int, len(slices)),
			arrived: make([]map[*workerState]bool, len(slices)),
		}
		for i := range sc.arrived {
			sc.arrived[i] = make(map[*workerState]bool, len(c.workers))
		}
		c.coord, c.coordStreams = sc, streams
	}
	for i := range sc.pending {
		sc.pending[i] = len(c.workers)
		clear(sc.arrived[i])
	}
	return sc
}

// arrive records one worker's push of slice sj and triggers the fold when
// it was the last.
func (sc *sliceCoordinator) arrive(ws *workerState, sj int) {
	sc.mu.Lock()
	sc.arrived[sj][ws] = true
	sc.pending[sj]--
	ready := sc.pending[sj] == 0
	sc.mu.Unlock()
	if ready {
		sc.foldSlice(sj)
	}
}

// foldSlice folds one quiescent slice, recorded as a server sync span.
func (sc *sliceCoordinator) foldSlice(sj int) {
	c := sc.cluster
	span := c.observer.Span(obs.ProcReal, "server", "ps", "sync")
	sl := sc.slices[sj]
	c.foldQRows(sl.lo, sl.hi)
	c.metrics.ObservePhase(trace.Sync, span.EndArg("slice", float64(sj)))
}

// drop releases an evicted worker's outstanding arrivals: every slice it
// never pushed is decremented, and slices that were waiting only on it
// fold now, from the survivors' pushes. Called after the epoch's worker
// goroutines have quiesced and the worker has been removed from the
// cluster, so the fold no longer reads its push buffer.
func (sc *sliceCoordinator) drop(ws *workerState) {
	for sj := range sc.slices {
		sc.mu.Lock()
		release := sc.pending[sj] > 0 && !sc.arrived[sj][ws]
		if release {
			sc.arrived[sj][ws] = true
			sc.pending[sj]--
			release = sc.pending[sj] == 0
		}
		sc.mu.Unlock()
		if release {
			sc.foldSlice(sj)
		}
	}
}
