package ps

import (
	"testing"

	"hccmf/internal/comm"
)

// recordingRemote wraps an in-process transport with the Remote capability,
// recording every published shard — the cluster-side contract a real wire
// transport (internal/comm/net) relies on to serve pulls.
type recordingRemote struct {
	comm.Transport
	syncs []comm.Shard
}

func (r *recordingRemote) RemoteAddr() string { return "fake:0" }
func (r *recordingRemote) SyncShard(src []float32, x comm.Xfer) (comm.TransferStats, error) {
	r.syncs = append(r.syncs, x.Shard)
	return comm.TransferStats{BusBytes: int64(len(src)) * int64(x.Enc.BytesPerParam())}, nil
}

func (r *recordingRemote) count(m comm.Matrix) int {
	n := 0
	for _, s := range r.syncs {
		if s.Matrix == m && s.Owner == comm.GlobalOwner {
			n++
		}
	}
	return n
}

// The cluster must publish the authoritative global factors to a remote
// transport: both matrices at construction, Q after every sync, and P only
// on the epochs it changed — every Q-only middle epoch leaves P untouched.
func TestClusterPublishesGlobalToRemote(t *testing.T) {
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.5, 0.5}, 48)
	rem := &recordingRemote{Transport: comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 2})}
	cfg := defaultConfig(120, 80)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}
	cfg.MeanRating = full.MeanRating()
	cfg.Transport = rem
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if rem.count(comm.MatrixQ) != 1 || rem.count(comm.MatrixP) != 1 {
		t.Fatalf("construction published %+v, want one Q and one P shard", rem.syncs)
	}
	const epochs = 5
	if err := c.Train(epochs, nil); err != nil {
		t.Fatal(err)
	}
	// One publish at New plus one per epoch; P travels at New and on the
	// final epoch only.
	if got := rem.count(comm.MatrixQ); got != 1+epochs {
		t.Fatalf("Q published %d times, want %d", got, 1+epochs)
	}
	if got := rem.count(comm.MatrixP); got != 2 {
		t.Fatalf("P published %d times under Q-only, want 2 (init + final)", got)
	}
	for _, s := range rem.syncs {
		want := len(c.global.Q)
		if s.Matrix == comm.MatrixP {
			want = len(c.global.P)
		}
		if s.Lo != 0 || s.Hi != want {
			t.Fatalf("published partial shard %v", s)
		}
	}
	// Publishes are real traffic: the stats must account them.
	if c.CommStats().BusBytes == 0 {
		t.Fatal("published bytes not accounted")
	}
}

// In-process transports have no remote store; nothing must be published.
func TestNoPublishOnInProcessTransport(t *testing.T) {
	full, confs := buildProblem(t, 60, 40, 1000, []float64{1}, 49)
	cfg := defaultConfig(60, 40)
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(2, nil); err != nil {
		t.Fatal(err)
	}
}
