package ps

import (
	"testing"

	"hccmf/internal/mf"
)

func TestClusterScheduleOverridesGamma(t *testing.T) {
	full, confs := buildProblem(t, 80, 60, 3000, []float64{1}, 51)
	cfg := defaultConfig(80, 60)
	cfg.MeanRating = full.MeanRating()
	cfg.LRSchedule = mf.InverseDecay{Gamma0: 0.02, Beta: 0.3}
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(20, nil); err != nil {
		t.Fatal(err)
	}
	if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.6 {
		t.Fatalf("scheduled training RMSE %v", rmse)
	}
	if err := c.Global().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHyperForWithoutSchedule(t *testing.T) {
	_, confs := buildProblem(t, 40, 30, 400, []float64{1}, 52)
	cfg := defaultConfig(40, 30)
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if got := c.hyperFor(5); got != cfg.Hyper {
		t.Fatalf("hyperFor without schedule = %+v", got)
	}
	c.cfg.LRSchedule = mf.InverseDecay{Gamma0: 0.02, Beta: 0.5}
	if got := c.hyperFor(4); got.Gamma >= 0.02 || got.Lambda1 != cfg.Hyper.Lambda1 {
		t.Fatalf("hyperFor with schedule = %+v", got)
	}
}
