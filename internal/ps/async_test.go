package ps

import (
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/mf"
	"hccmf/internal/raceflag"
)

// skipAsyncUnderRace: async streams share local P rows without locks by
// design (see async.go); the race detector rightly flags that, so these
// tests step aside under -race, mirroring the Hogwild engine tests.
func skipAsyncUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("async streams are intentionally lock-free; skipped under -race")
	}
}

func TestItemSlicesCoverAndPartition(t *testing.T) {
	for _, c := range []struct{ n, s int }{{10, 3}, {7, 7}, {5, 9}, {100, 1}, {3, 0}} {
		slices := itemSlices(c.n, c.s)
		if slices[0].lo != 0 || slices[len(slices)-1].hi != c.n {
			t.Fatalf("n=%d s=%d: slices do not cover: %+v", c.n, c.s, slices)
		}
		for i := 1; i < len(slices); i++ {
			if slices[i].lo != slices[i-1].hi {
				t.Fatalf("n=%d s=%d: gap at %d", c.n, c.s, i)
			}
		}
		if c.s > c.n && len(slices) != c.n {
			t.Fatalf("n=%d s=%d: not clamped: %d slices", c.n, c.s, len(slices))
		}
	}
}

func TestSliceChunksBucketByItem(t *testing.T) {
	_, confs := buildProblem(t, 60, 40, 800, []float64{1}, 31)
	ws := &workerState{conf: confs[0]}
	slices := itemSlices(40, 4)
	chunks := ws.sliceChunks(slices)
	total := 0
	for j, chunk := range chunks {
		for _, e := range chunk {
			if int(e.I) < slices[j].lo || int(e.I) >= slices[j].hi {
				t.Fatalf("entry item %d escaped slice %d %+v", e.I, j, slices[j])
			}
		}
		total += len(chunk)
	}
	if total != confs[0].Shard.NNZ() {
		t.Fatalf("chunks hold %d entries, want %d", total, confs[0].Shard.NNZ())
	}
	// Cached on second call.
	if &ws.sliceChunks(slices)[0] != &chunks[0] {
		t.Fatal("chunks not cached")
	}
}

func TestAsyncEpochConverges(t *testing.T) {
	skipAsyncUnderRace(t)
	full, confs := buildProblem(t, 150, 90, 8000, []float64{0.4, 0.6}, 32)
	cfg := defaultConfig(150, 90)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 4}
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	before := mf.RMSE(c.Snapshot(), full.Entries)
	if err := c.Train(30, nil); err != nil {
		t.Fatal(err)
	}
	after := mf.RMSE(c.Snapshot(), full.Entries)
	if after >= before {
		t.Fatalf("async training RMSE rose %v → %v", before, after)
	}
	if after > 0.6 {
		t.Fatalf("async convergence poor: %v", after)
	}
	// Final global model complete (P pushed on last epoch).
	if g := mf.RMSE(c.Global(), full.Entries); g > 0.6 {
		t.Fatalf("global model incomplete after async run: %v", g)
	}
	if err := c.Global().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncMatchesSyncCommVolume(t *testing.T) {
	skipAsyncUnderRace(t)
	_, confs := buildProblem(t, 100, 60, 2000, []float64{0.5, 0.5}, 33)
	run := func(streams int) int64 {
		cfg := defaultConfig(100, 60)
		cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: streams}
		c, err := New(cfg, confs)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Train(6, nil); err != nil {
			t.Fatal(err)
		}
		return c.CommStats().BusBytes
	}
	// Slicing the Q transfers must not change total bus traffic — the
	// whole point of Strategy 3 is overlap, not volume.
	if sync, async := run(1), run(4); sync != async {
		t.Fatalf("async moved %d bytes vs sync %d", async, sync)
	}
}

func TestAsyncNaiveModeAlsoWorks(t *testing.T) {
	skipAsyncUnderRace(t)
	full, confs := buildProblem(t, 80, 50, 3000, []float64{0.5, 0.5}, 34)
	cfg := defaultConfig(80, 50)
	cfg.Strategy = comm.Strategy{Encoding: comm.FP32, Streams: 2} // P&Q + streams
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(20, nil); err != nil {
		t.Fatal(err)
	}
	if rmse := mf.RMSE(c.Global(), full.Entries); rmse > 0.6 {
		t.Fatalf("async naive-mode convergence poor: %v", rmse)
	}
}

func TestAsyncSingleWorkerManyStreams(t *testing.T) {
	skipAsyncUnderRace(t)
	full, confs := buildProblem(t, 90, 70, 3000, []float64{1}, 35)
	cfg := defaultConfig(90, 70)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 8}
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(25, nil); err != nil {
		t.Fatal(err)
	}
	if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.6 {
		t.Fatalf("8-stream single worker RMSE %v", rmse)
	}
}
