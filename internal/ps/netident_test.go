package ps

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"hccmf/internal/comm"
	commnet "hccmf/internal/comm/net"
	"hccmf/internal/mf"
)

// newNetServer starts a loopback parameter server sized for the test
// problem and a dialer bound to it, both torn down with the test.
func newNetServer(t *testing.T, m, n, k int, scfg commnet.ServerConfig) (*commnet.Server, *commnet.Dialer) {
	t.Helper()
	s, err := commnet.Listen("127.0.0.1:0", scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	d := &commnet.Dialer{Addr: s.Addr(), M: m, N: n, K: k, OpTimeout: 10 * time.Second}
	t.Cleanup(func() { _ = d.Close() })
	return s, d
}

// trainedCluster runs one full training pass over the canonical small
// problem on the given transport and returns the cluster. The problem is
// rebuilt from its seed each call so runs cannot share state.
func trainedCluster(t *testing.T, tr comm.Transport, strat comm.Strategy, epochs int) *Cluster {
	t.Helper()
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.3, 0.3, 0.4}, 51)
	cfg := defaultConfig(120, 80)
	cfg.Strategy = strat
	cfg.MeanRating = full.MeanRating()
	cfg.Transport = tr
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(epochs, nil); err != nil {
		t.Fatal(err)
	}
	return c
}

func factorsBitEqual(t *testing.T, what string, got, want *mf.Factors) {
	t.Helper()
	for name, pair := range map[string][2][]float32{
		"P": {got.P, want.P},
		"Q": {got.Q, want.Q},
	} {
		g, w := pair[0], pair[1]
		if len(g) != len(w) {
			t.Fatalf("%s: %s length %d vs %d", what, name, len(g), len(w))
		}
		for i := range g {
			if math.Float32bits(g[i]) != math.Float32bits(w[i]) {
				t.Fatalf("%s: %s[%d] = %v, want %v (bit-exact)", what, name, i, g[i], w[i])
			}
		}
	}
}

// The tentpole's acceptance bar: a cluster training against a TCP
// parameter server must produce the very same bits as the in-process
// COMM-P baseline under the same seed — for every synchronous strategy,
// with and without fp16 on the wire. (Asynchronous streams are excluded:
// their Hogwild folds are non-deterministic by design.)
func TestTCPClusterBitIdenticalToInProcess(t *testing.T) {
	const epochs = 6
	for _, mode := range []struct {
		name   string
		strat  comm.Strategy
		noFP16 bool
	}{
		{name: "naive-fp32", strat: comm.Strategy{Encoding: comm.FP32, Streams: 1}},
		{name: "q-only-fp32", strat: comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}},
		{name: "q-only-fp16", strat: comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}},
		// fp16 requested but declined at handshake: the round trip moves to
		// the endpoints and the bits must not care.
		{name: "q-only-fp16-declined", strat: comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}, noFP16: true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			base := trainedCluster(t,
				comm.MustNew(comm.Spec{Kind: comm.KindMessage}), mode.strat, epochs)
			_, d := newNetServer(t, 120, 80, 8, commnet.ServerConfig{NoFP16: mode.noFP16})
			got := trainedCluster(t, d, mode.strat, epochs)
			factorsBitEqual(t, "tcp vs comm-p", got.Snapshot(), base.Snapshot())
			// The wire run accounts the same logical traffic but real frames.
			ws, bs := got.CommStats(), base.CommStats()
			if ws.BusBytes < bs.BusBytes {
				t.Fatalf("logical BusBytes shrank on the wire: tcp %d vs comm-p %d", ws.BusBytes, bs.BusBytes)
			}
			if ws.Frames == 0 || ws.WireBytes == 0 || ws.Handshakes == 0 {
				t.Fatalf("wire accounting missing: %+v", ws)
			}
		})
	}
}

// Chaos over real TCP: seeded transient faults and truncations injected
// around the dialer are absorbed by the retry decorator, and because a
// retried wire push is idempotent the run stays bit-identical to the
// fault-free TCP run.
func TestTCPClusterChaosBitIdentical(t *testing.T) {
	strat := comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}
	const epochs = 6

	_, clean := newNetServer(t, 120, 80, 8, commnet.ServerConfig{})
	base := trainedCluster(t, clean, strat, epochs)

	_, d := newNetServer(t, 120, 80, 8, commnet.ServerConfig{})
	chaos := comm.NewRetrying(mustFaulty(d, comm.FaultSpec{
		Transient: 0.08,
		Truncate:  0.02,
		Seed:      99,
	}), comm.RetryPolicy{Attempts: 8})
	got := trainedCluster(t, chaos, strat, epochs)
	factorsBitEqual(t, "chaos tcp vs clean tcp", got.Snapshot(), base.Snapshot())
	// The waste must be visible to the cost model.
	if got.CommStats().Retries == 0 {
		t.Fatal("chaos run accounted no retries")
	}
}

// A worker whose TCP link points at a dead endpoint exhausts its retries
// and is evicted; the survivors (on the live server) finish the run.
func TestTCPDeadWorkerLinkEvicts(t *testing.T) {
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.3, 0.3, 0.4}, 52)
	_, live := newNetServer(t, 120, 80, 8, commnet.ServerConfig{})

	// A port that refuses connections: bind, record, release.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	_ = ln.Close()
	dead := &commnet.Dialer{Addr: deadAddr, M: 120, N: 80, K: 8, OpTimeout: 500 * time.Millisecond}
	t.Cleanup(func() { _ = dead.Close() })
	confs[1].Transport = comm.NewRetrying(dead, comm.RetryPolicy{Attempts: 2})

	cfg := defaultConfig(120, 80)
	cfg.MeanRating = full.MeanRating()
	cfg.Transport = live
	cfg.EvictOnFailure = true
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(15, nil); err != nil {
		t.Fatalf("run did not survive a dead TCP link: %v", err)
	}
	ev := c.Evictions()
	if len(ev) != 1 || ev[0].Worker != confs[1].Name {
		t.Fatalf("evictions = %+v", ev)
	}
	if got := c.CommStats().Retries; got == 0 {
		t.Fatal("dead link consumed no accounted retries")
	}
	if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.5 {
		t.Fatalf("model incomplete after TCP eviction: RMSE %v", rmse)
	}
}

// Killing the server mid-training aborts the run with a transport error
// (the seed behaviour for unrecovered failures) instead of hanging.
func TestTCPServerKilledMidTrainingAborts(t *testing.T) {
	full, confs := buildProblem(t, 60, 40, 1000, []float64{0.5, 0.5}, 53)
	s, d := newNetServer(t, 60, 40, 8, commnet.ServerConfig{})
	d.OpTimeout = 2 * time.Second
	cfg := defaultConfig(60, 40)
	cfg.MeanRating = full.MeanRating()
	cfg.Transport = d
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Train(10, func(epoch int, _ *mf.Factors) {
		if epoch == 1 {
			_ = s.Close()
		}
	})
	if err == nil {
		t.Fatal("training outlived its parameter server")
	}
	if !strings.Contains(err.Error(), "commnet") {
		t.Fatalf("abort does not name the transport: %v", err)
	}
}
