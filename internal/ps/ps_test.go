package ps

import (
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/mf"
	"hccmf/internal/sparse"
)

// buildProblem generates a low-rank training matrix and cuts it into
// row-grid shards with the given weights.
func buildProblem(t testing.TB, m, n, nnz int, weights []float64, seed uint64) (*sparse.COO, []WorkerConf) {
	t.Helper()
	rng := sparse.NewRand(seed)
	const rank = 4
	pf := make([]float32, m*rank)
	qf := make([]float32, n*rank)
	for i := range pf {
		pf[i] = 0.5 + rng.Float32()
	}
	for i := range qf {
		qf[i] = 0.5 + rng.Float32()
	}
	full := sparse.NewCOO(m, n, nnz)
	for c := 0; c < nnz; c++ {
		u := rng.Intn(m)
		i := rng.Intn(n)
		var dot float32
		for f := 0; f < rank; f++ {
			dot += pf[u*rank+f] * qf[i*rank+f]
		}
		full.Add(int32(u), int32(i), dot+0.05*(rng.Float32()-0.5))
	}
	full.Shuffle(rng)

	csr := sparse.NewCSRFromCOO(full)
	slices, err := sparse.CutRowGrid(csr, weights)
	if err != nil {
		t.Fatal(err)
	}
	confs := make([]WorkerConf, len(slices))
	for i, sl := range slices {
		shard := sparse.NewCOO(m, n, int(sl.NNZ))
		for _, e := range full.Entries {
			if int(e.U) >= sl.Lo && int(e.U) < sl.Hi {
				shard.Entries = append(shard.Entries, e)
			}
		}
		confs[i] = WorkerConf{
			Name:   workerName(i),
			Engine: mf.Serial{},
			Shard:  shard,
			RowLo:  sl.Lo, RowHi: sl.Hi,
			Weight: weights[i],
		}
	}
	return full, confs
}

func workerName(i int) string { return string(rune('a'+i)) + "-worker" }

func defaultConfig(m, n int) Config {
	return Config{
		M: m, N: n, K: 8,
		Hyper:      mf.HyperParams{Gamma: 0.01, Lambda1: 0.005, Lambda2: 0.005},
		Transport:  comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}),
		Strategy:   comm.Strategy{Encoding: comm.FP32, Streams: 1},
		MeanRating: 4,
		Seed:       7,
	}
}

func TestClusterConvergesMultiWorker(t *testing.T) {
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.3, 0.3, 0.4}, 1)
	cfg := defaultConfig(120, 80)
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	before := mf.RMSE(c.Snapshot(), full.Entries)
	if err := c.Train(30, nil); err != nil {
		t.Fatal(err)
	}
	after := mf.RMSE(c.Snapshot(), full.Entries)
	if after >= before {
		t.Fatalf("RMSE rose %v → %v", before, after)
	}
	if after > 0.5 {
		t.Fatalf("poor convergence: RMSE %v", after)
	}
	if err := c.Global().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQOnlyStrategyConverges(t *testing.T) {
	full, confs := buildProblem(t, 120, 40, 6000, []float64{0.5, 0.5}, 2)
	cfg := defaultConfig(120, 40)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(30, nil); err != nil {
		t.Fatal(err)
	}
	if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.5 {
		t.Fatalf("Q-only convergence poor: %v", rmse)
	}
	// After the final epoch the *global* model must be complete (P pushed).
	if rmse := mf.RMSE(c.Global(), full.Entries); rmse > 0.5 {
		t.Fatalf("global model incomplete after final push: %v", rmse)
	}
}

func TestQOnlyMovesLessData(t *testing.T) {
	_, confs := buildProblem(t, 200, 20, 3000, []float64{0.5, 0.5}, 3)
	run := func(strategy comm.Strategy) int64 {
		cfg := defaultConfig(200, 20)
		cfg.Strategy = strategy
		c, err := New(cfg, confs)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Train(10, nil); err != nil {
			t.Fatal(err)
		}
		return c.CommStats().BusBytes
	}
	pq := run(comm.Strategy{Encoding: comm.FP32, Streams: 1})
	q := run(comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1})
	halfQ := run(comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1})
	if q >= pq/2 {
		t.Fatalf("Q-only moved %d vs P&Q %d; want large reduction on tall matrix", q, pq)
	}
	if halfQ >= q {
		t.Fatalf("FP16 moved %d vs FP32 %d", halfQ, q)
	}
}

func TestBusBytesMatchStrategyAccounting(t *testing.T) {
	_, confs := buildProblem(t, 100, 30, 2000, []float64{0.5, 0.5}, 4)
	cfg := defaultConfig(100, 30)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 5
	if err := c.Train(epochs, nil); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, w := range confs {
		want += cfg.Strategy.RunBytes(cfg.K, cfg.M, cfg.N, w.RowHi-w.RowLo, epochs)
	}
	if got := c.CommStats().BusBytes; got != want {
		t.Fatalf("BusBytes = %d, strategy accounting says %d", got, want)
	}
}

func TestMessageTransportEquivalentMath(t *testing.T) {
	full, confs := buildProblem(t, 80, 60, 3000, []float64{0.5, 0.5}, 5)
	runRMSE := func(tr comm.Transport) float64 {
		cfg := defaultConfig(80, 60)
		cfg.Transport = tr
		cfg.MeanRating = full.MeanRating()
		c, err := New(cfg, confs)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Train(15, nil); err != nil {
			t.Fatal(err)
		}
		return mf.RMSE(c.Snapshot(), full.Entries)
	}
	a := runRMSE(comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 2}))
	b := runRMSE(comm.MustNew(comm.Spec{Kind: comm.KindMessage}))
	if a != b {
		t.Fatalf("COMM (%v) and COMM-P (%v) must compute identical models", a, b)
	}
}

func TestFP16TransportStillConverges(t *testing.T) {
	full, confs := buildProblem(t, 100, 50, 4000, []float64{0.4, 0.6}, 6)
	cfg := defaultConfig(100, 50)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(30, nil); err != nil {
		t.Fatal(err)
	}
	if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.5 {
		t.Fatalf("fp16 transport broke convergence: RMSE %v", rmse)
	}
}

func TestObserverCalledEveryEpoch(t *testing.T) {
	_, confs := buildProblem(t, 50, 30, 500, []float64{1}, 7)
	cfg := defaultConfig(50, 30)
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	var epochs []int
	err = c.Train(4, func(e int, model *mf.Factors) {
		epochs = append(epochs, e)
		if model == nil {
			t.Error("nil model in observer")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 4 || epochs[3] != 3 {
		t.Fatalf("observer epochs = %v", epochs)
	}
}

func TestNewValidation(t *testing.T) {
	_, confs := buildProblem(t, 50, 30, 500, []float64{0.5, 0.5}, 8)
	good := defaultConfig(50, 30)

	bad := good
	bad.M = 0
	if _, err := New(bad, confs); err == nil {
		t.Error("zero M accepted")
	}
	bad = good
	bad.Transport = nil
	if _, err := New(bad, confs); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := New(good, nil); err == nil {
		t.Error("no workers accepted")
	}

	broken := make([]WorkerConf, len(confs))
	copy(broken, confs)
	broken[0].Engine = nil
	if _, err := New(good, broken); err == nil {
		t.Error("nil engine accepted")
	}

	copy(broken, confs)
	broken[0].Weight = 0
	if _, err := New(good, broken); err == nil {
		t.Error("zero weight accepted")
	}

	copy(broken, confs)
	broken[0].RowHi = broken[0].RowLo
	if _, err := New(good, broken); err == nil {
		t.Error("empty row range accepted")
	}

	// Overlapping ranges.
	copy(broken, confs)
	broken[1].RowLo = broken[0].RowLo
	broken[1].Shard = broken[0].Shard
	if _, err := New(good, broken); err == nil {
		t.Error("overlapping row ranges accepted")
	}

	// Entry outside row range.
	copy(broken, confs)
	outside := broken[0].Shard.Clone()
	outside.Entries[0].U = int32(broken[0].RowHi)
	if int(outside.Entries[0].U) >= good.M {
		outside.Entries[0].U = int32(good.M - 1)
	}
	if int(outside.Entries[0].U) < broken[0].RowHi {
		t.Skip("cannot construct out-of-range entry for this cut")
	}
	broken[0].Shard = outside
	if _, err := New(good, broken); err == nil {
		t.Error("out-of-range shard entry accepted")
	}
}

func TestRunEpochValidation(t *testing.T) {
	_, confs := buildProblem(t, 50, 30, 500, []float64{1}, 9)
	c, err := New(defaultConfig(50, 30), confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunEpoch(-1, 5); err == nil {
		t.Error("negative epoch accepted")
	}
	if err := c.RunEpoch(5, 5); err == nil {
		t.Error("epoch ≥ total accepted")
	}
	if err := c.RunEpoch(0, 0); err == nil {
		t.Error("zero total accepted")
	}
}

func TestWeightsNormalised(t *testing.T) {
	full, confs := buildProblem(t, 60, 40, 1000, []float64{2, 6}, 10)
	cfg := defaultConfig(60, 40)
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, ws := range c.workers {
		sum += ws.conf.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestWorkersCount(t *testing.T) {
	_, confs := buildProblem(t, 50, 30, 500, []float64{0.5, 0.5}, 11)
	c, err := New(defaultConfig(50, 30), confs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers() != 2 {
		t.Fatalf("Workers = %d", c.Workers())
	}
}
