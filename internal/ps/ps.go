// Package ps implements HCC-MF's parameter-server runtime (paper Sections
// 3.1 and 3.5) with real computation: a server owns the global feature
// matrices; each worker holds a local replica, and every epoch runs the
// pull → compute → push → sync cycle. Workers execute concurrently in their
// own goroutines (data parallelism over a row grid), transfers go through a
// comm.Transport so copy semantics match the paper's COMM module, and the
// server's sync thread folds each push into the global model with one
// multiply-add per parameter.
//
// The package deals only in *correctness* (real updates, real RMSE).
// Simulated timing of the same cycle lives in internal/core, which charges
// the cost model against a simengine platform.
package ps

import (
	"errors"
	"fmt"
	"sync"

	"hccmf/internal/comm"
	"hccmf/internal/fp16"
	"hccmf/internal/mf"
	"hccmf/internal/obs"
	"hccmf/internal/schedule"
	"hccmf/internal/sparse"
	"hccmf/internal/trace"
)

// WorkerConf describes one worker's assignment.
type WorkerConf struct {
	// Name identifies the worker in stats.
	Name string
	// Engine executes the worker's local SGD pass.
	Engine mf.Engine
	// Shard is the worker's training data; every entry must fall inside
	// [RowLo, RowHi). Dimensions must equal the global matrix.
	Shard *sparse.COO
	// RowLo, RowHi delimit the worker's row-grid range.
	RowLo, RowHi int
	// Weight is the server's blend factor when folding this worker's Q
	// push (normalised across workers at construction).
	Weight float64
	// Transport, when non-nil, overrides Config.Transport for this worker.
	// It models a per-worker link, letting one worker's channel degrade
	// (or die) independently of the rest of the cluster.
	Transport comm.Transport
}

// Config is the cluster-wide training configuration.
type Config struct {
	M, N, K int
	Hyper   mf.HyperParams
	// Transport moves feature data (COMM or COMM-P).
	Transport comm.Transport
	// Strategy selects payloads and encodings.
	Strategy comm.Strategy
	// MeanRating seeds factor initialisation.
	MeanRating float64
	// Seed makes initialisation reproducible.
	Seed uint64
	// LRSchedule, when non-nil, overrides Hyper.Gamma per epoch (e.g.
	// cuMF_SGD's inverse decay). Regularisers stay fixed.
	LRSchedule mf.Schedule
	// Schedule configures adaptive epoch-boundary rebalancing (see
	// internal/schedule): with Policy Throughput the cluster feeds each
	// worker's measured phase seconds into a re-solve at the sync barrier
	// and re-shards when the predicted makespan gain clears the hysteresis
	// threshold. The zero value (Policy Off) keeps the static split.
	// Rebalancing needs per-worker timing: either an Obs observer with a
	// clock, or a deterministic Schedule.Measure hook.
	Schedule schedule.Config
	// EvictOnFailure enables graceful degradation: a worker whose
	// transfers still fail after the transport's own retries is evicted —
	// its row range and shard move to a survivor — instead of aborting
	// the whole run. Off by default (a failure aborts, as before).
	EvictOnFailure bool
	// Obs, when non-nil, receives phase spans and run metrics from the
	// training loop (see internal/obs). The cluster never reads a clock
	// itself — events carry whatever clock the observer's tracer was built
	// with, which keeps this package inside the simtime invariant.
	Obs *obs.Observer
}

// Cluster is a live parameter-server training instance.
type Cluster struct {
	cfg     Config
	global  *mf.Factors
	workers []*workerState
	// baseQ snapshots the global Q each epoch's pulls were served from, so
	// sync can fold each worker's *delta* against it. Under FP16 it holds
	// the encode/decode round-trip of the global Q (see snapshotBaseQ).
	baseQ []float32
	// baseQStage is the FP16 staging buffer for snapshotBaseQ.
	baseQStage []fp16.Bits16
	// evictions records workers removed by fault tolerance.
	evictions []Eviction
	// rebalancer drives adaptive epoch-boundary rescheduling (nil when
	// Config.Schedule is Off — the static path costs one nil check).
	rebalancer *schedule.Rebalancer
	// rebalances records the re-shards performed so far.
	rebalances []Rebalance
	// loadScratch is maybeRebalance's reused per-epoch load vector.
	loadScratch []schedule.WorkerLoad

	// deltaPool recycles foldQRows' per-row delta accumulators. A pool
	// (rather than one buffer on the cluster) because async mode folds
	// different Q slices concurrently from stream goroutines.
	deltaPool sync.Pool
	// phaseWorkers/phaseErrs are runPhase's reused scratch; valid only for
	// the duration of one phase (settle reads them before the next starts).
	phaseWorkers []*workerState
	phaseErrs    []error
	// snapScratch is Train's reused observer snapshot (see Train).
	snapScratch *mf.Factors
	// coord is the async mode's reused slice coordinator (see coordinator).
	coord        *sliceCoordinator
	coordStreams int

	// observer/metrics mirror cfg.Obs; both are nil-safe on every path, so
	// uninstrumented clusters pay only dead branches.
	observer *obs.Observer
	metrics  *obs.RunMetrics

	mu    sync.Mutex
	stats comm.TransferStats
}

type workerState struct {
	// id is the worker's stable index in the original roster; it names the
	// worker's push shards on the transport (comm.WorkerShard) and stays
	// fixed across evictions so a remote store never sees two workers
	// claim one buffer.
	id    int
	conf  WorkerConf
	local *mf.Factors
	// pushQ is the worker's push buffer for Q (and pushP for final P
	// pushes): the shared region the server folds from.
	pushQ []float32
	pushP []float32
	// chunks caches the shard bucketed by item slice (async mode).
	chunks [][]sparse.Rating
	// epochSeconds accumulates this epoch's measured pull+compute+push
	// span durations for the rebalancer. Written only by the worker's own
	// phase goroutine; the WaitGroup barrier between phases orders the
	// writes against the server's epoch-boundary read and reset.
	epochSeconds float64
}

// New validates the configuration and builds a cluster with initialised
// global factors.
func New(cfg Config, workers []WorkerConf) (*Cluster, error) {
	if cfg.M <= 0 || cfg.N <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("ps: invalid dims m=%d n=%d k=%d", cfg.M, cfg.N, cfg.K)
	}
	if cfg.Transport == nil {
		return nil, errors.New("ps: nil transport")
	}
	if len(workers) == 0 {
		return nil, errors.New("ps: no workers")
	}
	var wsum float64
	for i := range workers {
		w := &workers[i]
		if w.Engine == nil {
			return nil, fmt.Errorf("ps: worker %q has no engine", w.Name)
		}
		if w.Shard == nil || w.Shard.Rows != cfg.M || w.Shard.Cols != cfg.N {
			return nil, fmt.Errorf("ps: worker %q shard dims mismatch", w.Name)
		}
		if w.RowLo < 0 || w.RowHi > cfg.M || w.RowLo >= w.RowHi {
			return nil, fmt.Errorf("ps: worker %q row range [%d,%d)", w.Name, w.RowLo, w.RowHi)
		}
		for _, e := range w.Shard.Entries {
			if int(e.U) < w.RowLo || int(e.U) >= w.RowHi {
				return nil, fmt.Errorf("ps: worker %q entry row %d outside [%d,%d)",
					w.Name, e.U, w.RowLo, w.RowHi)
			}
		}
		if w.Weight <= 0 {
			return nil, fmt.Errorf("ps: worker %q weight %v", w.Name, w.Weight)
		}
		wsum += w.Weight
	}
	// Row ranges must not overlap (overlap would let two workers push the
	// same P rows — the WAW race the row grid exists to avoid).
	for i := range workers {
		for j := i + 1; j < len(workers); j++ {
			a, b := workers[i], workers[j]
			if a.RowLo < b.RowHi && b.RowLo < a.RowHi {
				return nil, fmt.Errorf("ps: workers %q and %q have overlapping row ranges", a.Name, b.Name)
			}
		}
	}

	rng := sparse.NewRand(cfg.Seed)
	c := &Cluster{
		cfg:        cfg,
		global:     mf.NewFactorsInit(cfg.M, cfg.N, cfg.K, cfg.MeanRating, rng),
		baseQ:      make([]float32, cfg.N*cfg.K),
		observer:   cfg.Obs,
		metrics:    cfg.Obs.RunMetrics(),
		rebalancer: schedule.New(cfg.Schedule),
	}
	for i := range workers {
		w := workers[i]
		w.Weight /= wsum
		ws := &workerState{
			id:    i,
			conf:  w,
			local: mf.NewFactors(cfg.M, cfg.N, cfg.K),
			pushQ: make([]float32, cfg.N*cfg.K),
		}
		if cfg.Strategy.QOnly {
			// Final push carries only the worker's own rows.
			ws.pushP = make([]float32, (w.RowHi-w.RowLo)*cfg.K)
			// Preprocessing (workflow step ③): the server hands each
			// worker its P rows once, before training; not bus-charged.
			lo, hi := w.RowLo*cfg.K, w.RowHi*cfg.K
			copy(ws.local.P[lo:hi], c.global.P[lo:hi])
		} else {
			// The naive baseline pushes the complete P every epoch.
			ws.pushP = make([]float32, cfg.M*cfg.K)
		}
		c.workers = append(c.workers, ws)
	}
	// A remote transport serves pulls from its own store, not this
	// process's memory: seed it with the initial factors so epoch 0 pulls
	// the same model an in-process run starts from.
	if err := c.publishGlobal(true); err != nil {
		return nil, err
	}
	return c, nil
}

// publishGlobal uploads the authoritative global factors to the remote
// store after they change (initialisation, every sync barrier), always in
// FP32 — the store holds full precision and the strategy's encoding is
// applied per-pull on the wire, so a remote pull delivers exactly
// roundtrip(global), bit-identical to the in-process transports. On
// in-process transports (no Remote capability) this is a no-op: the
// cluster's memory IS the store. withP skips the user matrix on the
// epochs it cannot have changed (Q-only middle epochs).
func (c *Cluster) publishGlobal(withP bool) error {
	rem, ok := comm.AsRemote(c.cfg.Transport)
	if !ok {
		return nil
	}
	st, err := rem.SyncShard(c.global.Q, comm.Xfer{
		Shard: comm.GlobalShard(comm.MatrixQ, 0, len(c.global.Q)),
		Enc:   comm.FP32,
	})
	c.account(st)
	if err != nil {
		return fmt.Errorf("ps: publish global Q: %v", err)
	}
	if !withP {
		return nil
	}
	st, err = rem.SyncShard(c.global.P, comm.Xfer{
		Shard: comm.GlobalShard(comm.MatrixP, 0, len(c.global.P)),
		Enc:   comm.FP32,
	})
	c.account(st)
	if err != nil {
		return fmt.Errorf("ps: publish global P: %v", err)
	}
	return nil
}

// Global exposes the server's model (read-only by convention; call between
// epochs only).
func (c *Cluster) Global() *mf.Factors { return c.global }

// CommStats reports accumulated transfer accounting.
func (c *Cluster) CommStats() comm.TransferStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Workers reports the number of workers.
func (c *Cluster) Workers() int { return len(c.workers) }

// RunEpoch executes one full pull → compute → push → sync cycle. epoch is
// 0-based; total is the planned epoch count (the strategy needs both to
// place the first full pull and the final full push).
func (c *Cluster) RunEpoch(epoch, total int) error {
	if epoch < 0 || total <= 0 || epoch >= total {
		return fmt.Errorf("ps: epoch %d of %d", epoch, total)
	}
	span := c.observer.Span(obs.ProcReal, "server", "ps", "epoch")
	err := c.runEpoch(epoch, total)
	c.metrics.ObserveEpoch(span.EndArg("epoch", float64(epoch)))
	return err
}

func (c *Cluster) runEpoch(epoch, total int) error {
	if c.cfg.Strategy.Streams > 1 {
		return c.runEpochAsync(epoch, total)
	}
	// Snapshot the Q every worker is about to pull; sync folds deltas
	// against it.
	snap := c.observer.Span(obs.ProcReal, "server", "ps", "snapshot")
	c.snapshotBaseQ()
	snap.End()
	// A worker that fails a phase is settled — evicted or fatal — before
	// the next phase starts, so an evicted worker never computes or pushes
	// and its heir trains the absorbed shard the same epoch.
	if err := c.phase(epoch, func(ws *workerState) error { return c.pull(ws, epoch) }); err != nil {
		return err
	}
	h := c.hyperFor(epoch)
	if err := c.phase(epoch, func(ws *workerState) error {
		span := c.observer.Span(obs.ProcReal, ws.conf.Name, "ps", "compute")
		ws.conf.Engine.Epoch(ws.local, ws.conf.Shard, h)
		sec := span.End()
		c.metrics.ObservePhase(trace.Compute, sec)
		ws.epochSeconds += sec
		return nil
	}); err != nil {
		return err
	}
	if err := c.phase(epoch, func(ws *workerState) error { return c.push(ws, epoch, total) }); err != nil {
		return err
	}
	// Sync runs on the server thread (the paper's Sync thread), draining
	// all push buffers.
	span := c.observer.Span(obs.ProcReal, "server", "ps", "sync")
	c.syncAll(epoch, total)
	c.metrics.ObservePhase(trace.Sync, span.End())
	// P changes at sync only when it was pushed this epoch.
	if err := c.publishGlobal(!c.cfg.Strategy.QOnly || epoch == total-1); err != nil {
		return err
	}
	// Adaptive rescheduling happens strictly at the epoch boundary: every
	// push is folded, the global model is published, no worker is running.
	return c.maybeRebalance(epoch, total)
}

// snapshotBaseQ records the Q this epoch's pulls are served from. Under
// FP16 the snapshot takes the same encode/decode round-trip the pulls see:
// a worker that never touches a row pushes back exactly roundtrip(global
// Q), so diffing against the round-tripped base leaves untouched rows at
// delta zero. Diffing against the raw global Q (the old behaviour) made
// quantization error look like an update from every worker — dragging
// untouched rows toward their FP16 rounding each epoch and inflating the
// updater count that divides real conflicting deltas.
func (c *Cluster) snapshotBaseQ() {
	copy(c.baseQ, c.global.Q)
	if c.cfg.Strategy.Encoding == comm.FP16 {
		if c.baseQStage == nil {
			c.baseQStage = make([]fp16.Bits16, len(c.baseQ))
		}
		fp16.EncodeSlice(c.baseQStage, c.baseQ)
		fp16.DecodeSlice(c.baseQ, c.baseQStage)
	}
}

// hyperFor applies the learning-rate schedule, if any, to the epoch.
func (c *Cluster) hyperFor(epoch int) mf.HyperParams {
	h := c.cfg.Hyper
	if c.cfg.LRSchedule != nil {
		h.Gamma = c.cfg.LRSchedule.Gamma(epoch)
	}
	return h
}

// runPhase executes fn once per current worker concurrently, returning the
// worker snapshot the results are aligned to (evictions mutate c.workers,
// so callers must not index into it with the phase's error slice). Both
// returned slices are scratch reused by the next phase; settle consumes
// them within the phase, nothing may retain them.
func (c *Cluster) runPhase(fn func(*workerState) error) ([]*workerState, []error) {
	c.phaseWorkers = append(c.phaseWorkers[:0], c.workers...)
	workers := c.phaseWorkers
	if cap(c.phaseErrs) < len(workers) {
		c.phaseErrs = make([]error, len(workers))
	}
	errs := c.phaseErrs[:len(workers)]
	for i := range errs {
		errs[i] = nil
	}
	var wg sync.WaitGroup
	for i, ws := range workers {
		wg.Add(1)
		go func(i int, ws *workerState) {
			defer wg.Done()
			errs[i] = fn(ws)
		}(i, ws)
	}
	wg.Wait()
	return workers, errs
}

// phase runs one bulk-synchronous phase and settles its failures.
func (c *Cluster) phase(epoch int, fn func(*workerState) error) error {
	workers, errs := c.runPhase(fn)
	_, err := c.settle(epoch, workers, errs)
	return err
}

// transportFor resolves the worker's link (per-worker override or the
// cluster-wide transport).
func (c *Cluster) transportFor(ws *workerState) comm.Transport {
	if ws.conf.Transport != nil {
		return ws.conf.Transport
	}
	return c.cfg.Transport
}

// pull downloads the feature data the strategy calls for this epoch.
// Transfer stats are accounted even when the transfer fails: a retried or
// truncated attempt consumed real bus time.
func (c *Cluster) pull(ws *workerState, epoch int) error {
	span := c.observer.Span(obs.ProcReal, ws.conf.Name, "ps", "pull")
	err := c.pullData(ws, epoch)
	sec := span.End()
	c.metrics.ObservePhase(trace.Pull, sec)
	ws.epochSeconds += sec
	return err
}

func (c *Cluster) pullData(ws *workerState, epoch int) error {
	enc := c.cfg.Strategy.Encoding
	tr := c.transportFor(ws)
	// Q always travels.
	st, err := tr.Pull(ws.local.Q, c.global.Q, comm.Xfer{
		Shard: comm.GlobalShard(comm.MatrixQ, 0, len(c.global.Q)),
		Enc:   enc,
	})
	c.account(st)
	if err != nil {
		return fmt.Errorf("ps: pull Q for %q: %v", ws.conf.Name, err)
	}
	if !c.cfg.Strategy.QOnly {
		// Naive baseline: the complete P every epoch.
		st, err := tr.Pull(ws.local.P, c.global.P, comm.Xfer{
			Shard: comm.GlobalShard(comm.MatrixP, 0, len(c.global.P)),
			Enc:   enc,
		})
		c.account(st)
		if err != nil {
			return fmt.Errorf("ps: pull P for %q: %v", ws.conf.Name, err)
		}
	}
	return nil
}

// push uploads the worker's updates into its push buffers.
func (c *Cluster) push(ws *workerState, epoch, total int) error {
	span := c.observer.Span(obs.ProcReal, ws.conf.Name, "ps", "push")
	err := c.pushData(ws, epoch, total)
	sec := span.End()
	c.metrics.ObservePhase(trace.Push, sec)
	ws.epochSeconds += sec
	return err
}

func (c *Cluster) pushData(ws *workerState, epoch, total int) error {
	enc := c.cfg.Strategy.Encoding
	tr := c.transportFor(ws)
	st, err := tr.Push(ws.pushQ, ws.local.Q, comm.Xfer{
		Shard: comm.WorkerShard(comm.MatrixQ, ws.id, 0, len(ws.pushQ)),
		Enc:   enc,
	})
	c.account(st)
	if err != nil {
		return fmt.Errorf("ps: push Q for %q: %v", ws.conf.Name, err)
	}
	switch {
	case !c.cfg.Strategy.QOnly:
		// Naive baseline: full P every epoch.
		st, err := tr.Push(ws.pushP, ws.local.P, comm.Xfer{
			Shard: comm.WorkerShard(comm.MatrixP, ws.id, 0, len(ws.pushP)),
			Enc:   enc,
		})
		c.account(st)
		if err != nil {
			return fmt.Errorf("ps: push P for %q: %v", ws.conf.Name, err)
		}
	case epoch == total-1:
		// Final Q-only push adds the worker's own P rows.
		lo, hi := ws.conf.RowLo*c.cfg.K, ws.conf.RowHi*c.cfg.K
		st, err := tr.Push(ws.pushP, ws.local.P[lo:hi], comm.Xfer{
			Shard: comm.WorkerShard(comm.MatrixP, ws.id, lo, hi),
			Enc:   enc,
		})
		c.account(st)
		if err != nil {
			return fmt.Errorf("ps: push P for %q: %v", ws.conf.Name, err)
		}
	}
	return nil
}

// syncAll folds every worker's push buffers into the global model with the
// paper's one-multiply-add-per-parameter rule, applied conflict-aware per
// Q row: q ← q + Σ_i (q_i − q_base)/c, where c counts the workers that
// actually updated the row this epoch. Rows trained by a single worker
// take its delta verbatim (no damping of the effective learning rate);
// rows hit by several workers — the WAW conflicts the row grid cannot
// avoid — are averaged among the actual updaters, which keeps the Zipf
// head stable. Each worker's own P rows are copied verbatim (row-grid
// ranges are disjoint, so no blending is needed).
func (c *Cluster) syncAll(epoch, total int) {
	c.foldQRows(0, c.cfg.N)
	for _, ws := range c.workers {
		lo, hi := ws.conf.RowLo*c.cfg.K, ws.conf.RowHi*c.cfg.K
		switch {
		case !c.cfg.Strategy.QOnly:
			// The push buffer holds the full P; only the worker's own rows
			// are authoritative — the rest is the stale pull, which the
			// server ignores (folding it would let workers revert each
			// other).
			copy(c.global.P[lo:hi], ws.pushP[lo:hi])
		case epoch == total-1:
			copy(c.global.P[lo:hi], ws.pushP)
		}
	}
}

func (c *Cluster) account(st comm.TransferStats) {
	c.mu.Lock()
	c.stats.Add(st)
	c.mu.Unlock()
}

// foldQRows folds every worker's pushed Q rows in [rowLo, rowHi) into the
// global model, conflict-aware (see syncAll). Callers must ensure the row
// range is quiescent: either the bulk-synchronous epoch boundary, or the
// async slice coordinator's all-workers-pushed condition.
func (c *Cluster) foldQRows(rowLo, rowHi int) {
	k := c.cfg.K
	g := c.global.Q
	buf, _ := c.deltaPool.Get().(*[]float32)
	if buf == nil || len(*buf) != k {
		b := make([]float32, k)
		buf = &b
	}
	defer c.deltaPool.Put(buf)
	rowDelta := *buf
	for row := rowLo; row < rowHi; row++ {
		lo := row * k
		updaters := 0
		for i := range rowDelta {
			rowDelta[i] = 0
		}
		for _, ws := range c.workers {
			touched := false
			for i := 0; i < k; i++ {
				if d := ws.pushQ[lo+i] - c.baseQ[lo+i]; d != 0 {
					rowDelta[i] += d
					touched = true
				}
			}
			if touched {
				updaters++
			}
		}
		if updaters == 0 {
			continue
		}
		inv := 1 / float32(updaters)
		for i := 0; i < k; i++ {
			g[lo+i] += rowDelta[i] * inv
		}
	}
}

// Snapshot assembles the logically complete model for evaluation: global Q
// plus each worker's authoritative P rows (which, under Q-only, have not
// been pushed yet). Evaluation is out of band and charges no communication.
func (c *Cluster) Snapshot() *mf.Factors {
	out := mf.NewFactors(c.cfg.M, c.cfg.N, c.cfg.K)
	c.snapshotInto(out)
	return out
}

// snapshotInto overlays the logically complete model onto dst (same shape
// as the global factors).
func (c *Cluster) snapshotInto(dst *mf.Factors) {
	dst.CopyFrom(c.global)
	if c.cfg.Strategy.QOnly {
		for _, ws := range c.workers {
			lo, hi := ws.conf.RowLo*c.cfg.K, ws.conf.RowHi*c.cfg.K
			copy(dst.P[lo:hi], ws.local.P[lo:hi])
		}
	}
}

// Train runs the full epoch loop, invoking observe (if non-nil) with the
// 0-based epoch index and a post-sync model snapshot after every epoch.
// The snapshot passed to observe is a buffer reused across epochs: it is
// valid only for the duration of the call and must not be retained (every
// in-tree observer evaluates it immediately).
func (c *Cluster) Train(epochs int, observe func(epoch int, model *mf.Factors)) error {
	for e := 0; e < epochs; e++ {
		if err := c.RunEpoch(e, epochs); err != nil {
			return err
		}
		if observe != nil {
			if c.snapScratch == nil {
				c.snapScratch = mf.NewFactors(c.cfg.M, c.cfg.N, c.cfg.K)
			}
			c.snapshotInto(c.snapScratch)
			observe(e, c.snapScratch)
		}
	}
	return nil
}
