package ps

import (
	"math"
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/mf"
)

// mustFaulty wraps comm.NewFaulty for tests whose literal specs are valid
// by construction.
func mustFaulty(inner comm.Transport, spec comm.FaultSpec) comm.Transport {
	f, err := comm.NewFaulty(inner, spec)
	if err != nil {
		panic(err)
	}
	return f
}

// chaosTransport is the canonical fault-tolerant stack: shared memory with
// seeded fault injection, wrapped in bounded retries (no real sleeping).
func chaosTransport(rate float64, seed uint64, attempts int) comm.Transport {
	faulty := mustFaulty(comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}), comm.FaultSpec{
		Transient: rate * 0.8,
		Truncate:  rate * 0.2,
		Seed:      seed,
	})
	return comm.NewRetrying(faulty, comm.RetryPolicy{Attempts: attempts})
}

// Training under seeded transient faults with retry enabled must complete
// with zero run-level errors, bounded retries, and (since a retried
// in-memory transfer is eventually exact) the very model the fault-free
// run computes.
func TestChaosTransientFaultRates(t *testing.T) {
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.3, 0.3, 0.4}, 41)
	run := func(rate float64) (float64, comm.TransferStats) {
		cfg := defaultConfig(120, 80)
		cfg.MeanRating = full.MeanRating()
		cfg.Transport = chaosTransport(rate, 1234, 12)
		cfg.EvictOnFailure = true
		c, err := New(cfg, confs)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Train(15, nil); err != nil {
			t.Fatalf("rate %v: run failed: %v", rate, err)
		}
		if ev := c.Evictions(); len(ev) != 0 {
			t.Fatalf("rate %v: unexpected evictions %+v", rate, ev)
		}
		return mf.RMSE(c.Snapshot(), full.Entries), c.CommStats()
	}
	base, baseStats := run(0)
	if baseStats.Retries != 0 {
		t.Fatalf("fault-free run accounted %d retries", baseStats.Retries)
	}
	for _, rate := range []float64{0.05, 0.10, 0.20} {
		rmse, stats := run(rate)
		if diff := math.Abs(rmse-base) / base; diff > 0.02 {
			t.Fatalf("rate %v: RMSE %v vs fault-free %v (%.1f%% off)", rate, rmse, base, diff*100)
		}
		if stats.Retries == 0 {
			t.Fatalf("rate %v: no retries accounted", rate)
		}
		// Retry budget must stay bounded: nowhere near attempts × transfers.
		transfers := int64(3 /*workers*/ * 15 /*epochs*/ * 4 /*pull+push ×2 matrices*/)
		if int64(stats.Retries) > 12*transfers {
			t.Fatalf("rate %v: %d retries for ~%d transfers", rate, stats.Retries, transfers)
		}
	}
}

// A worker whose link is permanently down exhausts its retry budget and is
// evicted; the survivors absorb its rows and the run completes with a
// model that covers all of P.
func TestEvictionReassignsRowsSync(t *testing.T) {
	for _, mode := range []struct {
		name  string
		strat comm.Strategy
	}{
		{"naive", comm.Strategy{Encoding: comm.FP32, Streams: 1}},
		{"q-only", comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			full, confs := buildProblem(t, 120, 80, 6000, []float64{0.3, 0.3, 0.4}, 42)
			confs[1].Transport = comm.NewRetrying(
				mustFaulty(comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}), comm.FaultSpec{Transient: 1, Seed: 5}),
				comm.RetryPolicy{Attempts: 3})
			cfg := defaultConfig(120, 80)
			cfg.Strategy = mode.strat
			cfg.MeanRating = full.MeanRating()
			cfg.EvictOnFailure = true
			c, err := New(cfg, confs)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Train(25, nil); err != nil {
				t.Fatalf("run did not survive a dead worker: %v", err)
			}
			ev := c.Evictions()
			if len(ev) != 1 || ev[0].Worker != confs[1].Name || ev[0].Epoch != 0 {
				t.Fatalf("evictions = %+v", ev)
			}
			if c.Workers() != 2 {
				t.Fatalf("workers = %d after eviction", c.Workers())
			}
			// Survivor ranges must cover [0, M) with no overlap.
			covered := make([]int, 120)
			for _, ws := range c.workers {
				for r := ws.conf.RowLo; r < ws.conf.RowHi; r++ {
					covered[r]++
				}
			}
			for r, n := range covered {
				if n != 1 {
					t.Fatalf("row %d owned by %d workers after eviction", r, n)
				}
			}
			if err := c.Global().Validate(); err != nil {
				t.Fatal(err)
			}
			// The final model must cover the evicted rows: training on the
			// full entry set still converges.
			if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.5 {
				t.Fatalf("model incomplete after eviction: RMSE %v", rmse)
			}
			if rmse := mf.RMSE(c.Global(), full.Entries); rmse > 0.5 {
				t.Fatalf("global model incomplete after eviction: RMSE %v", rmse)
			}
		})
	}
}

// Eviction in asynchronous mode: the coordinator must release the dead
// worker's undelivered slices so the survivors' pushes still fold.
func TestEvictionReassignsRowsAsync(t *testing.T) {
	skipAsyncUnderRace(t)
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.5, 0.5}, 43)
	confs[1].Transport = comm.NewRetrying(
		mustFaulty(comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}), comm.FaultSpec{Transient: 1, Seed: 6}),
		comm.RetryPolicy{Attempts: 2})
	cfg := defaultConfig(120, 80)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 4}
	cfg.MeanRating = full.MeanRating()
	cfg.EvictOnFailure = true
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(25, nil); err != nil {
		t.Fatalf("async run did not survive a dead worker: %v", err)
	}
	ev := c.Evictions()
	if len(ev) != 1 || ev[0].InheritedBy != confs[0].Name {
		t.Fatalf("evictions = %+v", ev)
	}
	if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.6 {
		t.Fatalf("async model incomplete after eviction: RMSE %v", rmse)
	}
	if rmse := mf.RMSE(c.Global(), full.Entries); rmse > 0.6 {
		t.Fatalf("async global model incomplete after eviction: RMSE %v", rmse)
	}
}

// Without the opt-in, a dead worker still aborts the run (the seed
// behaviour), and the error names the worker.
func TestDeadWorkerAbortsWithoutOptIn(t *testing.T) {
	full, confs := buildProblem(t, 60, 40, 1000, []float64{0.5, 0.5}, 44)
	confs[1].Transport = comm.NewRetrying(
		mustFaulty(comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}), comm.FaultSpec{Transient: 1, Seed: 7}),
		comm.RetryPolicy{Attempts: 2})
	cfg := defaultConfig(60, 40)
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(5, nil); err == nil {
		t.Fatal("dead worker did not abort without EvictOnFailure")
	}
	if len(c.Evictions()) != 0 {
		t.Fatal("eviction recorded without opt-in")
	}
}

// When every worker is dead there is nobody to degrade to: the run must
// fail with a clear error rather than spin.
func TestAllWorkersDeadFails(t *testing.T) {
	full, confs := buildProblem(t, 60, 40, 1000, []float64{1}, 45)
	confs[0].Transport = comm.NewRetrying(
		mustFaulty(comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}), comm.FaultSpec{Transient: 1, Seed: 8}),
		comm.RetryPolicy{Attempts: 2})
	cfg := defaultConfig(60, 40)
	cfg.MeanRating = full.MeanRating()
	cfg.EvictOnFailure = true
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(5, nil); err == nil {
		t.Fatal("run with zero surviving workers reported success")
	}
}

// Retries consumed by transfers that eventually fail are still accounted,
// so the cost model sees the waste of the dead link.
func TestEvictionAccountsFailedRetries(t *testing.T) {
	full, confs := buildProblem(t, 60, 40, 1000, []float64{0.5, 0.5}, 46)
	confs[1].Transport = comm.NewRetrying(
		mustFaulty(comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}), comm.FaultSpec{Transient: 1, Seed: 9}),
		comm.RetryPolicy{Attempts: 4})
	cfg := defaultConfig(60, 40)
	cfg.MeanRating = full.MeanRating()
	cfg.EvictOnFailure = true
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(5, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.CommStats().Retries; got != 3 {
		t.Fatalf("Retries = %d, want 3 (one exhausted budget of 4 attempts)", got)
	}
}
