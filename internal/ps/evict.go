package ps

import (
	"fmt"

	"hccmf/internal/obs"
)

// Worker eviction — graceful degradation when a worker's link dies.
//
// The paper's protocol assumes a failure-free platform: one failed transfer
// aborted the whole run. With retrying transports a transient fault heals
// in place; eviction handles the remaining case, a worker whose transfers
// still fail after the retry budget. The cluster removes it and a surviving
// worker inherits its row range and shard, so the epoch — and the run —
// completes with the survivors.
//
// Recovery of the dead worker's P rows leans on the COMM module's defining
// property: worker buffers are mapped into the server's address space, so
// the worker's local replica outlives the worker's ability to communicate.
// The server salvages those rows directly (a memory copy, not a transfer —
// nothing is bus-charged), lands them in the global model, and seeds the
// heir's replica with them, mirroring preprocessing step ③. The dying
// worker's current-epoch compute may be partially lost; that is the same
// "small part of the training results is lost" trade the async mode
// already accepts.

// Eviction records one worker's removal from the cluster.
type Eviction struct {
	// Worker names the evicted worker.
	Worker string
	// Epoch is the 0-based epoch the eviction happened in.
	Epoch int
	// RowLo, RowHi is the row range the worker owned.
	RowLo, RowHi int
	// InheritedBy names the survivor that absorbed the range and shard.
	InheritedBy string
	// Err is the transfer error that exhausted the retry budget.
	Err error
}

// Evictions reports the workers evicted so far (empty on a healthy run).
func (c *Cluster) Evictions() []Eviction {
	return append([]Eviction(nil), c.evictions...)
}

// settle inspects one phase's per-worker errors. With EvictOnFailure off
// the first failure aborts the run, exactly the pre-fault-tolerance
// behaviour. With it on, every failed worker is evicted and the epoch
// continues with the survivors; the evicted states are returned so the
// async coordinator can release their pending slices.
func (c *Cluster) settle(epoch int, workers []*workerState, errs []error) ([]*workerState, error) {
	var failed []*workerState
	cause := make(map[*workerState]error)
	for i, err := range errs {
		if err != nil {
			failed = append(failed, workers[i])
			cause[workers[i]] = err
		}
	}
	if len(failed) == 0 {
		return nil, nil
	}
	if !c.cfg.EvictOnFailure {
		return nil, cause[failed[0]]
	}
	// Drop all casualties first so heirs are chosen among true survivors.
	survivors := c.workers[:0:0]
	for _, ws := range c.workers {
		if cause[ws] == nil {
			survivors = append(survivors, ws)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("ps: all workers failed in epoch %d: %v", epoch, cause[failed[0]])
	}
	c.workers = survivors
	for _, ws := range failed {
		if err := c.evict(epoch, ws, cause[ws]); err != nil {
			return nil, err
		}
	}
	return failed, nil
}

// evict reassigns ws's rows and shard to an heir and records the eviction.
func (c *Cluster) evict(epoch int, ws *workerState, cause error) error {
	heir := c.chooseHeir(ws)
	if heir == nil {
		return fmt.Errorf("ps: worker %q failed (%v) and no survivor can absorb rows [%d,%d)",
			ws.conf.Name, cause, ws.conf.RowLo, ws.conf.RowHi)
	}
	c.inherit(ws, heir)
	// Re-normalise blend weights over the survivors.
	var wsum float64
	for _, s := range c.workers {
		wsum += s.conf.Weight
	}
	for _, s := range c.workers {
		s.conf.Weight /= wsum
	}
	c.evictions = append(c.evictions, Eviction{
		Worker: ws.conf.Name,
		Epoch:  epoch,
		RowLo:  ws.conf.RowLo, RowHi: ws.conf.RowHi,
		InheritedBy: heir.conf.Name,
		Err:         cause,
	})
	c.metrics.CountEviction()
	c.observer.Instant(obs.ProcReal, ws.conf.Name, "ps", "evict", "epoch", float64(epoch))
	// The heir's hull is imbalanced by construction: let the adaptive
	// scheduler re-shard at the next barrier without waiting out its
	// hysteresis or cooldown (no-op on a static run).
	c.rebalancer.Force()
	return nil
}

// chooseHeir picks the survivor to absorb dead's rows: row ranges stay
// contiguous intervals, so the heir's widened range (the hull of both) must
// not overlap any other survivor. Among the eligible, the one with the
// lightest shard takes the load.
func (c *Cluster) chooseHeir(dead *workerState) *workerState {
	var best *workerState
	for _, cand := range c.workers {
		lo := min(cand.conf.RowLo, dead.conf.RowLo)
		hi := max(cand.conf.RowHi, dead.conf.RowHi)
		eligible := true
		for _, other := range c.workers {
			if other != cand && other.conf.RowLo < hi && lo < other.conf.RowHi {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		if best == nil || len(cand.conf.Shard.Entries) < len(best.conf.Shard.Entries) {
			best = cand
		}
	}
	return best
}

// inherit merges dead's assignment into heir: salvaged P rows, shard
// entries, the widened row range, and rebuilt push buffers.
func (c *Cluster) inherit(dead, heir *workerState) {
	k := c.cfg.K
	newLo := min(heir.conf.RowLo, dead.conf.RowLo)
	newHi := max(heir.conf.RowHi, dead.conf.RowHi)
	oldLo, oldHi := heir.conf.RowLo, heir.conf.RowHi

	// Seed every inherited row (dead's range plus any gap the hull closes)
	// from the server's P — preprocessing step ③ replayed for the heir.
	for row := newLo; row < newHi; row++ {
		if row >= oldLo && row < oldHi {
			continue
		}
		copy(heir.local.P[row*k:(row+1)*k], c.global.P[row*k:(row+1)*k])
	}
	// Salvage the dead worker's replica through the shared mapping and
	// land it both server-side and in the heir. Under Q-only this is the
	// one case global P moves before the final push: the owner's final
	// push will never come.
	lo, hi := dead.conf.RowLo*k, dead.conf.RowHi*k
	copy(c.global.P[lo:hi], dead.local.P[lo:hi])
	copy(heir.local.P[lo:hi], dead.local.P[lo:hi])

	heir.conf.Shard.Entries = append(heir.conf.Shard.Entries, dead.conf.Shard.Entries...)
	heir.conf.RowLo, heir.conf.RowHi = newLo, newHi
	heir.conf.Weight += dead.conf.Weight
	// The async chunk cache buckets the old shard; rebuild lazily.
	heir.chunks = nil

	// Rebuild the P push buffer for the widened range, pre-filled from the
	// heir's replica so a sync that lands between this eviction and the
	// heir's next push stays row-aligned.
	if c.cfg.Strategy.QOnly {
		heir.pushP = make([]float32, (newHi-newLo)*k)
		copy(heir.pushP, heir.local.P[newLo*k:newHi*k])
	} else {
		copy(heir.pushP[newLo*k:newHi*k], heir.local.P[newLo*k:newHi*k])
	}
}
