package ps

import (
	"fmt"

	"hccmf/internal/obs"
	"hccmf/internal/schedule"
	"hccmf/internal/sparse"
)

// Adaptive epoch-boundary rescheduling — closing the loop from observed
// throughput back into the data partition.
//
// The planner's DP0/DP1/DP2 split is computed once from calibrated rates;
// this file revisits it at every sync barrier. The cluster accumulates
// each worker's measured pull+compute+push seconds (the span durations
// the phase wrappers already record for the obs histograms — no new
// measurement hot path), feeds them to schedule.Rebalancer, and when the
// predicted makespan gain clears the hysteresis threshold it re-shards
// the training data with sparse.RowShards and migrates the factor state,
// reusing the eviction path's salvage discipline (DESIGN.md §17).
//
// Determinism: the decision is a pure function of the measured seconds,
// and the re-shard is a pure function of the decision. Runs whose
// measurements are deterministic — a schedule.Config.Measure hook, or an
// observer on a virtual clock — therefore produce byte-identical models;
// the golden test pins this. Wall-clock-measured runs adapt to the real
// machine and are reproducible in distribution, not in bits.

// Rebalance records one adaptive re-shard.
type Rebalance struct {
	// Epoch is the 0-based epoch whose sync barrier triggered the
	// re-shard (the new split trains from the next epoch on).
	Epoch int
	// Shares is the achieved nnz share per worker, roster order.
	Shares []float64
	// Gain is the predicted relative makespan reduction that justified
	// the re-shard.
	Gain float64
	// Forced marks a post-eviction re-shard that bypassed hysteresis.
	Forced bool
}

// Rebalances reports the re-shards performed so far (empty on a static
// run).
func (c *Cluster) Rebalances() []Rebalance {
	return append([]Rebalance(nil), c.rebalances...)
}

// maybeRebalance runs the adaptive policy at one epoch's sync barrier.
// Every path through it resets the per-worker second accumulators, so
// each epoch is measured on its own.
func (c *Cluster) maybeRebalance(epoch, total int) error {
	if c.rebalancer == nil {
		return nil
	}
	loads := c.collectLoads()
	for _, ws := range c.workers {
		ws.epochSeconds = 0
	}
	// The async mode's staggered slices never quiesce per worker, so its
	// measurements do not isolate one worker's throughput; rebalancing is
	// a bulk-synchronous feature. The final epoch has no successor to
	// re-shard for.
	if c.cfg.Strategy.Streams > 1 || epoch == total-1 || len(c.workers) < 2 {
		return nil
	}
	d := c.rebalancer.Step(epoch, loads)
	c.metrics.SetScheduleGain(d.Gain)
	// Per-epoch assignment markers: one instant per worker carrying its
	// current share, so a trace shows the assignment trajectory.
	for i, ws := range c.workers {
		c.observer.Instant(obs.ProcReal, ws.conf.Name, "schedule", "assign", "share", loads[i].Share)
	}
	if !d.Rebalance {
		return nil
	}
	if err := c.reshard(d.Shares); err != nil {
		return fmt.Errorf("ps: rebalance at epoch %d: %v", epoch, err)
	}
	achieved := make([]float64, len(c.workers))
	for i, ws := range c.workers {
		achieved[i] = ws.conf.Weight
	}
	c.rebalances = append(c.rebalances, Rebalance{
		Epoch:  epoch,
		Shares: achieved,
		Gain:   d.Gain,
		Forced: d.Reason == "forced",
	})
	c.metrics.CountRebalance()
	c.observer.Instant(obs.ProcReal, "server", "schedule", "rebalance", "epoch", float64(epoch))
	return nil
}

// collectLoads snapshots the per-worker loads of the finished epoch.
func (c *Cluster) collectLoads() []schedule.WorkerLoad {
	if cap(c.loadScratch) < len(c.workers) {
		c.loadScratch = make([]schedule.WorkerLoad, len(c.workers))
	}
	loads := c.loadScratch[:len(c.workers)]
	var nnz int64
	for _, ws := range c.workers {
		nnz += int64(len(ws.conf.Shard.Entries))
	}
	for i, ws := range c.workers {
		share := ws.conf.Weight
		if nnz > 0 {
			// The achieved nnz share, not the target the last cut aimed
			// for: measured seconds correspond to the entries actually
			// trained.
			share = float64(len(ws.conf.Shard.Entries)) / float64(nnz)
		}
		loads[i] = schedule.WorkerLoad{
			Name:    ws.conf.Name,
			Share:   share,
			Updates: int64(len(ws.conf.Shard.Entries)),
			Seconds: ws.epochSeconds,
		}
	}
	return loads
}

// reshard re-cuts the row grid to the target shares and migrates factor
// state so training resumes as if the new assignment had been planned:
// authoritative P rows land in the global model first (the eviction
// path's salvage discipline — worker replicas are mapped into the
// server's address space, so this is a memory copy, not a transfer),
// then every worker receives its new contiguous row range, a fresh shard
// view, a replica seeded from the global model, and rebuilt push buffers.
func (c *Cluster) reshard(shares []float64) error {
	k := c.cfg.K
	if len(shares) != len(c.workers) {
		return fmt.Errorf("%d shares for %d workers", len(shares), len(c.workers))
	}
	// Workers are kept sorted ascending by RowLo (construction cuts the
	// grid in order; eviction hulls preserve disjoint interval order), so
	// concatenating shards in roster order yields the full training set
	// with every row's entries contiguous and in original relative order.
	total := 0
	for i, ws := range c.workers {
		if i > 0 && ws.conf.RowLo < c.workers[i-1].conf.RowHi {
			return fmt.Errorf("worker roster out of row order")
		}
		total += len(ws.conf.Shard.Entries)
	}
	if total == 0 {
		return nil
	}
	entries := make([]sparse.Rating, 0, total)
	for _, ws := range c.workers {
		entries = append(entries, ws.conf.Shard.Entries...)
	}
	full := &sparse.COO{Rows: c.cfg.M, Cols: c.cfg.N, Entries: entries}
	slices, shards, err := sparse.RowShards(full, shares)
	if err != nil {
		return err
	}

	// Under Q-only the worker replicas hold the authoritative P rows
	// (they are pushed only on the final epoch); land them server-side
	// before rows change owners. Under full-P sync the global matrix is
	// already authoritative at the barrier.
	if c.cfg.Strategy.QOnly {
		for _, ws := range c.workers {
			lo, hi := ws.conf.RowLo*k, ws.conf.RowHi*k
			copy(c.global.P[lo:hi], ws.local.P[lo:hi])
		}
	}
	for i, ws := range c.workers {
		sl := slices[i]
		ws.conf.Shard = shards[i]
		ws.conf.RowLo, ws.conf.RowHi = sl.Lo, sl.Hi
		ws.conf.Weight = float64(len(shards[i].Entries)) / float64(total)
		// Seed the replica's new range from the authoritative model —
		// preprocessing step ③ replayed for the new owner.
		lo, hi := sl.Lo*k, sl.Hi*k
		copy(ws.local.P[lo:hi], c.global.P[lo:hi])
		// Rebuild the P push buffer for the new range, pre-filled so a
		// sync landing before the next push stays row-aligned.
		if c.cfg.Strategy.QOnly {
			ws.pushP = make([]float32, (sl.Hi-sl.Lo)*k)
			copy(ws.pushP, ws.local.P[lo:hi])
		} else {
			copy(ws.pushP[lo:hi], ws.local.P[lo:hi])
		}
		// The async chunk cache buckets the old shard; rebuild lazily.
		ws.chunks = nil
	}
	return nil
}
