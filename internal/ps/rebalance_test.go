package ps

import (
	"math"
	"testing"
	"time"

	"hccmf/internal/comm"
	"hccmf/internal/mf"
	"hccmf/internal/obs"
	"hccmf/internal/schedule"
)

// driftMeasure is a deterministic Measure hook: worker 0 slows down with
// every epoch while the rest hold a constant rate, so the adaptive policy
// has a straggler to chase without any wall-clock involvement.
func driftMeasure(epoch int, loads []schedule.WorkerLoad) []float64 {
	secs := make([]float64, len(loads))
	for i, l := range loads {
		rate := 1e6
		if l.Name == workerName(0) {
			rate = 1e6 / (1 + 0.4*float64(epoch+1))
		}
		secs[i] = float64(l.Updates) / rate
	}
	return secs
}

func adaptiveConfig(m, n int) Config {
	cfg := defaultConfig(m, n)
	cfg.Schedule = schedule.Config{
		Policy:     schedule.Throughput,
		Hysteresis: 0.10,
		MinEpochs:  2,
		Measure:    driftMeasure,
	}
	return cfg
}

// The adaptive loop must actually move load off the measured straggler and
// still converge to a good model.
func TestRebalanceShiftsLoadOffStraggler(t *testing.T) {
	for _, mode := range []struct {
		name  string
		strat comm.Strategy
	}{
		{"naive", comm.Strategy{Encoding: comm.FP32, Streams: 1}},
		{"q-only", comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			full, confs := buildProblem(t, 160, 90, 8000, []float64{0.25, 0.25, 0.25, 0.25}, 11)
			cfg := adaptiveConfig(160, 90)
			cfg.Strategy = mode.strat
			cfg.MeanRating = full.MeanRating()
			c, err := New(cfg, confs)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Train(14, nil); err != nil {
				t.Fatal(err)
			}
			rebs := c.Rebalances()
			if len(rebs) == 0 {
				t.Fatal("no rebalance fired against a 5.6x straggler drift")
			}
			for _, r := range rebs {
				var sum float64
				for _, s := range r.Shares {
					if s <= 0 {
						t.Fatalf("epoch %d: non-positive share %v", r.Epoch, r.Shares)
					}
					sum += s
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("epoch %d: shares sum %v", r.Epoch, sum)
				}
			}
			// Worker 0 is the straggler: its final achieved share must be
			// well below its initial quarter.
			last := rebs[len(rebs)-1]
			if last.Shares[0] >= 0.25 {
				t.Fatalf("straggler share did not shrink: %v", last.Shares)
			}
			// Row coverage must stay a disjoint partition of [0, M).
			covered := make([]int, 160)
			for _, ws := range c.workers {
				for r := ws.conf.RowLo; r < ws.conf.RowHi; r++ {
					covered[r]++
				}
			}
			for r, cnt := range covered {
				if cnt != 1 {
					t.Fatalf("row %d owned by %d workers after resharding", r, cnt)
				}
			}
			// Every entry must still be trained by exactly one worker.
			total := 0
			for _, ws := range c.workers {
				total += len(ws.conf.Shard.Entries)
			}
			if total != len(full.Entries) {
				t.Fatalf("resharding lost entries: %d of %d", total, len(full.Entries))
			}
			if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.5 {
				t.Fatalf("adaptive run convergence poor: RMSE %v", rmse)
			}
			if rmse := mf.RMSE(c.Global(), full.Entries); rmse > 0.5 {
				t.Fatalf("global model incomplete after resharding: %v", rmse)
			}
		})
	}
}

// Golden determinism: with a deterministic Measure hook the whole adaptive
// run — decisions, re-shards, and the trained model — is a pure function
// of the seed. Two fresh runs must agree bit for bit.
func TestRebalanceGoldenDeterminism(t *testing.T) {
	run := func() (*mf.Factors, []Rebalance) {
		full, confs := buildProblem(t, 160, 90, 8000, []float64{0.25, 0.25, 0.25, 0.25}, 11)
		cfg := adaptiveConfig(160, 90)
		cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}
		cfg.MeanRating = full.MeanRating()
		c, err := New(cfg, confs)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Train(14, nil); err != nil {
			t.Fatal(err)
		}
		return c.Snapshot(), c.Rebalances()
	}
	a, ra := run()
	b, rb := run()
	if len(ra) == 0 {
		t.Fatal("golden run performed no rebalances")
	}
	if len(ra) != len(rb) {
		t.Fatalf("rebalance counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Epoch != rb[i].Epoch || len(ra[i].Shares) != len(rb[i].Shares) {
			t.Fatalf("rebalance %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
		for j := range ra[i].Shares {
			if ra[i].Shares[j] != rb[i].Shares[j] {
				t.Fatalf("rebalance %d share %d differs: %v vs %v", i, j, ra[i].Shares[j], rb[i].Shares[j])
			}
		}
	}
	for i := range a.P {
		if math.Float32bits(a.P[i]) != math.Float32bits(b.P[i]) {
			t.Fatalf("P[%d] differs across seeded runs: %x vs %x", i, a.P[i], b.P[i])
		}
	}
	for i := range a.Q {
		if math.Float32bits(a.Q[i]) != math.Float32bits(b.Q[i]) {
			t.Fatalf("Q[%d] differs across seeded runs: %x vs %x", i, a.Q[i], b.Q[i])
		}
	}
}

// A worker behind a comm.Faulty delay injector really is slower on the
// wall clock; with an observer supplying real timing the adaptive loop
// must shrink its assignment. This is the one rebalance test that reads
// the machine clock, so it asserts direction, not exact shares.
func TestRebalanceStragglerWallClock(t *testing.T) {
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.25, 0.25, 0.25, 0.25}, 21)
	// Worker 0 pays a 2ms spike on every transfer; the compute of ~1500
	// entries at k=8 is microseconds, so it dominates the epoch.
	confs[0].Transport = mustFaulty(
		comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}),
		comm.FaultSpec{Delay: 1, DelayFor: 2 * time.Millisecond, Seed: 9})
	cfg := defaultConfig(120, 80)
	cfg.MeanRating = full.MeanRating()
	cfg.Obs = obs.NewObserver(0, nil)
	cfg.Schedule = schedule.Config{
		Policy:     schedule.Throughput,
		Hysteresis: 0.10,
		MinEpochs:  1,
		MinShare:   0.02,
	}
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	before := len(confs[0].Shard.Entries)
	if err := c.Train(8, nil); err != nil {
		t.Fatal(err)
	}
	rebs := c.Rebalances()
	if len(rebs) == 0 {
		t.Fatal("no rebalance against a delay-injected straggler")
	}
	after := len(c.workers[0].conf.Shard.Entries)
	if after >= before {
		t.Fatalf("straggler shard grew: %d → %d entries", before, after)
	}
	// The counter must agree with the record.
	reg := cfg.Obs.Registry
	if got := counterValue(t, reg, "schedule/rebalances_total"); got != int64(len(rebs)) {
		t.Fatalf("schedule/rebalances_total = %d, want %d", got, len(rebs))
	}
}

// An eviction forces the next barrier's re-solve past hysteresis and
// cooldown, so the heir's doubled hull is split up again promptly.
func TestEvictionForcesRebalance(t *testing.T) {
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.3, 0.3, 0.4}, 31)
	confs[1].Transport = comm.NewRetrying(
		mustFaulty(comm.MustNew(comm.Spec{Kind: comm.KindShared, Workers: 4}), comm.FaultSpec{Transient: 1, Seed: 5}),
		comm.RetryPolicy{Attempts: 2})
	cfg := defaultConfig(120, 80)
	cfg.MeanRating = full.MeanRating()
	cfg.EvictOnFailure = true
	cfg.Schedule = schedule.Config{
		Policy:     schedule.Throughput,
		Hysteresis: 0.9, // high enough that only the forced step can fire
		MinEpochs:  100,
		Measure: func(epoch int, loads []schedule.WorkerLoad) []float64 {
			secs := make([]float64, len(loads))
			for i, l := range loads {
				secs[i] = float64(l.Updates) / 1e6
			}
			return secs
		},
	}
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(10, nil); err != nil {
		t.Fatal(err)
	}
	if ev := c.Evictions(); len(ev) != 1 {
		t.Fatalf("evictions = %+v", ev)
	}
	rebs := c.Rebalances()
	if len(rebs) != 1 {
		t.Fatalf("want exactly the forced rebalance, got %+v", rebs)
	}
	if !rebs[0].Forced {
		t.Fatalf("rebalance not marked forced: %+v", rebs[0])
	}
	// Forced or not, the re-shard equalises by measured throughput: with
	// uniform rates the survivors end up near 50/50 instead of the heir
	// keeping both shards.
	if s := rebs[0].Shares; math.Abs(s[0]-s[1]) > 0.2 {
		t.Fatalf("forced rebalance left survivors imbalanced: %v", s)
	}
	if rmse := mf.RMSE(c.Snapshot(), full.Entries); rmse > 0.5 {
		t.Fatalf("convergence poor after evict+rebalance: %v", rmse)
	}
}

// Async (staggered streams) runs must not re-shard: per-worker epoch
// timing does not isolate throughput when slices overlap.
func TestRebalanceSkipsAsyncMode(t *testing.T) {
	skipAsyncUnderRace(t)
	full, confs := buildProblem(t, 120, 80, 6000, []float64{0.5, 0.5}, 51)
	cfg := adaptiveConfig(120, 80)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 4}
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(10, nil); err != nil {
		t.Fatal(err)
	}
	if rebs := c.Rebalances(); len(rebs) != 0 {
		t.Fatalf("async mode rebalanced: %+v", rebs)
	}
}

// counterValue reads one counter's value out of a registry dump.
func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return int64(s.Value)
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}
