package ps

import (
	"testing"

	"hccmf/internal/comm"
	"hccmf/internal/mf"
)

// Invariants of the parameter-server protocol that every mode must hold.

// Under Q-only, global P rows stay at their initial values until the final
// epoch's push lands them — the whole point of Strategy 1.
func TestGlobalPFrozenUntilFinalPush(t *testing.T) {
	full, confs := buildProblem(t, 80, 50, 3000, []float64{0.5, 0.5}, 61)
	cfg := defaultConfig(80, 50)
	cfg.Strategy = comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	initP := append([]float32(nil), c.Global().P...)
	const total = 6
	for e := 0; e < total-1; e++ {
		if err := c.RunEpoch(e, total); err != nil {
			t.Fatal(err)
		}
		for i := range initP {
			if c.Global().P[i] != initP[i] {
				t.Fatalf("epoch %d: global P[%d] changed before the final push", e, i)
			}
		}
	}
	if err := c.RunEpoch(total-1, total); err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range initP {
		if c.Global().P[i] != initP[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("final push did not land P")
	}
}

// Rows of Q never touched by any training entry keep their initial values
// (delta folding must not disturb untouched parameters).
func TestUntouchedQRowsUnchanged(t *testing.T) {
	full, confs := buildProblem(t, 60, 40, 800, []float64{1}, 62)
	// Remove every rating of item 0 and item 39 from the shard.
	shard := confs[0].Shard
	kept := shard.Entries[:0]
	for _, e := range shard.Entries {
		if e.I != 0 && e.I != 39 {
			kept = append(kept, e)
		}
	}
	shard.Entries = kept
	cfg := defaultConfig(60, 40)
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	k := cfg.K
	q0 := append([]float32(nil), c.Global().Q[0*k:1*k]...)
	q39 := append([]float32(nil), c.Global().Q[39*k:40*k]...)
	if err := c.Train(5, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if c.Global().Q[i] != q0[i] {
			t.Fatalf("untouched item 0 row changed at %d", i)
		}
		if c.Global().Q[39*k+i] != q39[i] {
			t.Fatalf("untouched item 39 row changed at %d", i)
		}
	}
}

// Regression for the FP16 baseQ bug: the fold must diff pushes against the
// encoding round-trip of the base Q, not the raw base. Diffing against the
// raw base made FP16 quantization error look like an update from every
// worker, so rows no worker trained drifted toward their FP16 rounding
// each epoch. An untouched row must be bit-identical after an FP16 epoch.
func TestUntouchedQRowFP16BitIdentical(t *testing.T) {
	full, confs := buildProblem(t, 60, 40, 800, []float64{0.5, 0.5}, 65)
	// Strip items 0 and 39 from every shard so no worker touches them.
	for _, conf := range confs {
		kept := conf.Shard.Entries[:0]
		for _, e := range conf.Shard.Entries {
			if e.I != 0 && e.I != 39 {
				kept = append(kept, e)
			}
		}
		conf.Shard.Entries = kept
	}
	cfg := defaultConfig(60, 40)
	cfg.Strategy = comm.Strategy{Encoding: comm.FP16, Streams: 1}
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs)
	if err != nil {
		t.Fatal(err)
	}
	k := cfg.K
	q0 := append([]float32(nil), c.Global().Q[0*k:1*k]...)
	q39 := append([]float32(nil), c.Global().Q[39*k:40*k]...)
	if err := c.Train(3, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if got := c.Global().Q[i]; got != q0[i] {
			t.Fatalf("untouched item 0 row drifted under FP16 at %d: %v → %v", i, q0[i], got)
		}
		if got := c.Global().Q[39*k+i]; got != q39[i] {
			t.Fatalf("untouched item 39 row drifted under FP16 at %d: %v → %v", i, q39[i], got)
		}
	}
}

// With a single worker, the delta fold reduces to "take the worker's Q
// verbatim": training through the cluster equals training directly.
func TestSingleWorkerClusterMatchesDirectTraining(t *testing.T) {
	full, confs := buildProblem(t, 50, 30, 1000, []float64{1}, 63)
	cfg := defaultConfig(50, 30)
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the cluster's init and train directly with the same engine.
	ref := c.Global().Clone()
	h := cfg.Hyper
	const total = 4
	for e := 0; e < total; e++ {
		if err := c.RunEpoch(e, total); err != nil {
			t.Fatal(err)
		}
		confs[0].Engine.Epoch(ref, confs[0].Shard, h)
	}
	got := c.Snapshot()
	for i := range ref.Q {
		if got.Q[i] != ref.Q[i] {
			t.Fatalf("Q[%d] diverged: %v vs %v", i, got.Q[i], ref.Q[i])
		}
	}
	for i := range ref.P {
		if got.P[i] != ref.P[i] {
			t.Fatalf("P[%d] diverged", i)
		}
	}
}

// Snapshot never aliases live training state.
func TestSnapshotIsIsolated(t *testing.T) {
	full, confs := buildProblem(t, 40, 30, 500, []float64{1}, 64)
	cfg := defaultConfig(40, 30)
	cfg.MeanRating = full.MeanRating()
	c, err := New(cfg, confs[:1])
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	before := mf.RMSE(snap, full.Entries)
	if err := c.Train(5, nil); err != nil {
		t.Fatal(err)
	}
	if after := mf.RMSE(snap, full.Entries); after != before {
		t.Fatal("snapshot changed after further training")
	}
}
