#!/usr/bin/env bash
# verify.sh — the single verify entry point for HCC-MF (what CI runs).
#
# Runs, in order:
#   1. gofmt -l                        — the tree is gofmt-clean
#   2. go build ./...                  — everything compiles
#   3. go vet ./...                    — stock vet
#   4. hccmf-vet ./...                 — the determinism analyzer suite
#      (simtime, seededrand, panicpolicy, raceguard; see DESIGN.md §8).
#      simtime also polices obs.WallClock: sim packages may use an
#      injected observer but never mint a real clock (DESIGN.md §11)
#   5. go test -race over the concurrent packages — ps, comm, mf,
#      simengine, obs, plus the parallel-ingestion packages dataset,
#      sparse, parallel; the intentional Hogwild races stay off these
#      runs via internal/raceflag
#   6. go test -run=NONE -bench=. -benchtime=1x — every benchmark runs
#      once (including the ingest/v1 ingestion suite), so a PR cannot
#      silently break the suites behind hccmf-bench -json and
#      BENCH_*.json (see DESIGN.md §9–10). Output lands in a log so a
#      failure is diagnosable; the log's tail is echoed on error.
#   7. go test ./...                   — full test suite (includes the
#      fp16, dataset, and sparse fuzz targets' seed corpora)
#   8. go test -cover over the observability/measurement packages — a
#      visible coverage summary for obs, kernelbench, trace
#
# Any failure aborts with a nonzero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== hccmf-vet ./... (determinism invariants)"
go run ./cmd/hccmf-vet ./...

echo "== go test -race (ps, comm, mf, simengine, obs, dataset, sparse, parallel)"
go test -race ./internal/ps ./internal/comm ./internal/mf ./internal/simengine \
	./internal/obs ./internal/dataset ./internal/sparse ./internal/parallel

echo "== bench smoke (every benchmark once, kernel + ingest suites)"
bench_log=$(mktemp -t hccmf-bench-smoke.XXXXXX)
if ! go test -run=NONE -bench=. -benchtime=1x ./... > "$bench_log" 2>&1; then
	echo "bench smoke failed; last lines of $bench_log:" >&2
	tail -n 40 "$bench_log" >&2
	exit 1
fi
echo "   (full output: $bench_log)"

echo "== go test ./..."
go test ./...

echo "== coverage summary (obs, kernelbench, trace)"
go test -cover ./internal/obs ./internal/kernelbench ./internal/trace | awk '{print "   " $0}'

echo "verify: OK"
