#!/usr/bin/env bash
# verify.sh — the single verify entry point for HCC-MF.
#
# Runs, in order:
#   1. go build ./...                  — everything compiles
#   2. go vet ./...                    — stock vet
#   3. hccmf-vet ./...                 — the determinism analyzer suite
#      (simtime, seededrand, panicpolicy, raceguard; see DESIGN.md §8)
#   4. go test -race over the concurrent packages — ps, comm, mf,
#      simengine, plus the parallel-ingestion packages dataset, sparse,
#      parallel; the intentional Hogwild races stay off these runs via
#      internal/raceflag
#   5. go test -run=NONE -bench=. -benchtime=1x — every benchmark runs
#      once (including the ingest/v1 ingestion suite), so a PR cannot
#      silently break the suites behind hccmf-bench -json and
#      BENCH_*.json (see DESIGN.md §9–10)
#   6. go test ./...                   — full test suite (includes the
#      fp16, dataset, and sparse fuzz targets' seed corpora)
#
# Any failure aborts with a nonzero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== hccmf-vet ./... (determinism invariants)"
go run ./cmd/hccmf-vet ./...

echo "== go test -race (ps, comm, mf, simengine, dataset, sparse, parallel)"
go test -race ./internal/ps ./internal/comm ./internal/mf ./internal/simengine \
	./internal/dataset ./internal/sparse ./internal/parallel

echo "== bench smoke (every benchmark once, kernel + ingest suites)"
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "== go test ./..."
go test ./...

echo "verify: OK"
