#!/usr/bin/env bash
# verify.sh — the single verify entry point for HCC-MF (what CI runs).
#
# Runs, in order:
#   1. gofmt -l                        — the tree is gofmt-clean
#   2. go build ./...                  — everything compiles
#   3. go vet ./...                    — stock vet
#   4. hccmf-vet ./...                 — the invariant analyzer suite
#      (simtime, seededrand, panicpolicy, raceguard, errflow, hotalloc,
#      goroutinepolicy, nilobs, schemaconst; see DESIGN.md §8 and §14).
#      Runs module-aware against the committed lint.baseline ratchet:
#      recorded findings are tolerated, new findings fail. Emits the
#      hccmf-vet/v1 JSON document plus a per-analyzer count summary.
#      simtime also polices obs.WallClock: sim packages may use an
#      injected observer but never mint a real clock (DESIGN.md §11)
#   5. go test -race over the concurrent packages — ps, comm, comm/net,
#      mf, simengine, obs, recommend, plus the parallel-ingestion
#      packages dataset, sparse, parallel; the intentional Hogwild races
#      stay off these runs via internal/raceflag
#   6. go test -run=NONE -bench=. -benchtime=1x — every benchmark runs
#      once (including the ingest/v1 ingestion suite and the schedule/v1
#      straggler pair), so a PR cannot silently break the suites behind
#      hccmf-bench -json and BENCH_*.json (see DESIGN.md §9–10). Output
#      lands in a log so a failure is diagnosable; the log's tail is
#      echoed on error.
#   7. kernel regression gate — hccmf-benchdiff -fail-on-regress
#      measures the suite fresh and compares the kernel and schedule
#      groups against the newest committed BENCH_*.json baseline, after
#      dividing out the suite-median ratio (-normalize) so machine-wide
#      drift on a shared container cancels and only relative movement
#      can flag. The 50% threshold then catches real regressions (a
#      kernel accidentally falling off its fast path, an adaptive
#      scheduler that stopped firing), not noise; the CI report-only
#      benchdiff job keeps the tight numbers across all groups (see
#      DESIGN.md §12 and §16–17)
#   8. go test ./...                   — full test suite (includes the
#      fp16, dataset, and sparse fuzz targets' seed corpora)
#   9. go test -cover over the observability/measurement packages — a
#      visible coverage summary for obs, kernelbench, trace
#  10. serve smoke — build hccmf-serve + hccmf-loadgen, start the daemon
#      on a random port with a synthetic model, drive it with real HTTP
#      traffic, feed the resulting serve/v1 report through
#      hccmf-benchdiff, and shut the daemon down with SIGTERM
#      (see DESIGN.md §13)
#  11. distributed smoke — start hccmf-ps on a random port, train the
#      same seeded job once in-process (COMM-P) and once against the
#      server over hccmf-wire/v1 TCP, and require the saved factor
#      models to be byte-identical; SIGTERM drains the server
#      (see DESIGN.md §15)
#
# Any failure aborts with a nonzero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== hccmf-vet ./... (invariant suite, baseline ratchet)"
vet_json=$(mktemp -t hccmf-vet.XXXXXX.json)
go run ./cmd/hccmf-vet -baseline lint.baseline -json -summary ./... > "$vet_json"
echo "   (machine-readable findings: $vet_json)"

echo "== go test -race (ps, comm, comm/net, mf, simengine, obs, recommend, dataset, sparse, parallel)"
go test -race ./internal/ps ./internal/comm ./internal/comm/net ./internal/mf ./internal/simengine \
	./internal/obs ./internal/recommend ./internal/dataset ./internal/sparse ./internal/parallel

echo "== bench smoke (every benchmark once, kernel + ingest + schedule suites)"
bench_log=$(mktemp -t hccmf-bench-smoke.XXXXXX)
if ! go test -run=NONE -bench=. -benchtime=1x ./... > "$bench_log" 2>&1; then
	echo "bench smoke failed; last lines of $bench_log:" >&2
	tail -n 40 "$bench_log" >&2
	exit 1
fi
echo "   (full output: $bench_log)"

echo "== kernel regression gate (hccmf-benchdiff vs committed BENCH_*.json)"
# Fresh measurement averaged over 2 runs; the newest BENCH_*.json in the
# repo root is picked up as the baseline automatically. The kernel and
# schedule groups gate: serve p99 and the ingest readers are
# wall-clock-bound and jitter far more than ns/update on a shared 1-CPU
# container (CI's report-only job still diffs all groups). The schedule
# stragglers are stable — their deterministic throttle dominates — so a
# 50% regression there means the adaptive path genuinely broke (the
# rebalancer stopped firing). -normalize divides out the suite-median
# ratio first, so a machine-wide slowdown (another tenant on the host)
# cancels and only *relative* movement flags; the 50% threshold then
# absorbs per-kernel jitter (the lock-free Hogwild bench is bimodal
# under GOMAXPROCS=1) while still failing a kernel that falls off its
# fast path.
go run ./cmd/hccmf-benchdiff -count 2 -threshold 0.5 -groups kernel,schedule -normalize -fail-on-regress | awk '{print "   " $0}'

echo "== go test ./..."
go test ./...

echo "== coverage summary (obs, kernelbench, trace)"
go test -cover ./internal/obs ./internal/kernelbench ./internal/trace | awk '{print "   " $0}'

echo "== serve smoke (hccmf-serve + hccmf-loadgen + hccmf-benchdiff)"
smoke_dir=$(mktemp -d -t hccmf-serve-smoke.XXXXXX)
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
go build -o "$smoke_dir/hccmf-serve" ./cmd/hccmf-serve
go build -o "$smoke_dir/hccmf-loadgen" ./cmd/hccmf-loadgen
go build -o "$smoke_dir/hccmf-benchdiff" ./cmd/hccmf-benchdiff
"$smoke_dir/hccmf-serve" -synthetic 500x300x16 -addr 127.0.0.1:0 \
	-ready-file "$smoke_dir/addr" -metrics-out "$smoke_dir/metrics.json" \
	2> "$smoke_dir/serve.log" &
serve_pid=$!
for _ in $(seq 1 100); do
	[ -s "$smoke_dir/addr" ] && break
	if ! kill -0 "$serve_pid" 2>/dev/null; then
		echo "serve smoke: daemon died during startup:" >&2
		cat "$smoke_dir/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done
[ -s "$smoke_dir/addr" ] || { echo "serve smoke: daemon never became ready" >&2; exit 1; }
serve_addr=$(head -n1 "$smoke_dir/addr")
"$smoke_dir/hccmf-loadgen" -addr "$serve_addr" -requests 200 -concurrency 4 \
	-n 10 -out "$smoke_dir/serve.json" | awk '{print "   " $0}'
"$smoke_dir/hccmf-benchdiff" -baseline "$smoke_dir/serve.json" \
	-candidate "$smoke_dir/serve.json" -fail-on-regress | awk '{print "   " $0}'
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "serve smoke: daemon exited non-zero:" >&2; cat "$smoke_dir/serve.log" >&2; exit 1; }
[ -s "$smoke_dir/metrics.json" ] || { echo "serve smoke: no metrics document on shutdown" >&2; exit 1; }
trap 'rm -rf "$smoke_dir"' EXIT

echo "== distributed smoke (hccmf-ps + hccmf-train -connect, bit-identical factors)"
ps_dir=$(mktemp -d -t hccmf-ps-smoke.XXXXXX)
trap 'kill "$ps_pid" 2>/dev/null || true; rm -rf "$smoke_dir" "$ps_dir"' EXIT
go build -o "$ps_dir/hccmf-ps" ./cmd/hccmf-ps
go build -o "$ps_dir/hccmf-train" ./cmd/hccmf-train
"$ps_dir/hccmf-ps" -listen 127.0.0.1:0 -ready-file "$ps_dir/addr" \
	> "$ps_dir/ps.log" 2>&1 &
ps_pid=$!
for _ in $(seq 1 100); do
	[ -s "$ps_dir/addr" ] && break
	if ! kill -0 "$ps_pid" 2>/dev/null; then
		echo "distributed smoke: hccmf-ps died during startup:" >&2
		cat "$ps_dir/ps.log" >&2
		exit 1
	fi
	sleep 0.1
done
[ -s "$ps_dir/addr" ] || { echo "distributed smoke: hccmf-ps never became ready" >&2; exit 1; }
ps_addr=$(head -n1 "$ps_dir/addr")
"$ps_dir/hccmf-train" -preset netflix -scale 0.002 -epochs 3 -k 8 -seed 1 \
	-transport comm-p -save "$ps_dir/inproc.bin" > /dev/null
"$ps_dir/hccmf-train" -preset netflix -scale 0.002 -epochs 3 -k 8 -seed 1 \
	-connect "$ps_addr" -save "$ps_dir/tcp.bin" > /dev/null
cmp "$ps_dir/inproc.bin" "$ps_dir/tcp.bin" || {
	echo "distributed smoke: TCP-trained factors differ from in-process factors" >&2
	exit 1
}
echo "   two-process run bit-identical to in-process COMM-P"
kill -TERM "$ps_pid"
wait "$ps_pid" || { echo "distributed smoke: hccmf-ps exited non-zero:" >&2; cat "$ps_dir/ps.log" >&2; exit 1; }
trap 'rm -rf "$smoke_dir" "$ps_dir"' EXIT

echo "verify: OK"
