// Command hccmf-ps runs a standalone parameter server speaking
// hccmf-wire/v1. Workers started with `hccmf-train -connect <addr>` pull
// and push factor shards against it over TCP, turning the in-process
// COMM-P message path into a real multi-process deployment — with
// bit-identical training results.
//
// Usage:
//
//	hccmf-ps -listen 127.0.0.1:9770
//	hccmf-ps -listen 127.0.0.1:0 -ready-file /tmp/ps.addr
//
// With -ready-file the bound address (useful with port 0) is written to
// the file once the server accepts connections; process supervisors and
// test harnesses poll for it instead of racing the listener. On SIGINT or
// SIGTERM the server drains: the listener closes, in-flight requests
// finish, and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	commnet "hccmf/internal/comm/net"
	"hccmf/internal/version"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9770", "address to listen on (port 0 picks a free port; see -ready-file)")
	readyFile := flag.String("ready-file", "", "write the bound address to this file once serving")
	noFP16 := flag.Bool("no-fp16", false, "decline fp16 wire compression at handshake")
	idle := flag.Duration("idle-timeout", commnet.DefaultIdleTimeout, "drop connections idle for this long")
	verbose := flag.Bool("verbose", false, "log connection-level diagnostics to stderr")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-ps", version.String())
		return
	}

	cfg := commnet.ServerConfig{NoFP16: *noFP16, IdleTimeout: *idle}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	s, err := commnet.Listen(*listen, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hccmf-ps %s serving %s on %s\n", version.String(), commnet.WireSchema, s.Addr())
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			_ = s.Close()
			fatal(err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("hccmf-ps: %v — draining\n", got)
	start := time.Now()
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hccmf-ps: close:", err)
	}
	st := s.Stats()
	fmt.Printf("hccmf-ps: drained in %v: %d conns, %d frames (%d pulls, %d pushes, %d syncs, %d errors)\n",
		time.Since(start).Round(time.Millisecond), st.Conns, st.Frames, st.Pulls, st.Pushes, st.Syncs, st.Errors)
	if *readyFile != "" {
		_ = os.Remove(*readyFile)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hccmf-ps:", err)
	os.Exit(1)
}
