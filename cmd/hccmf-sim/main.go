// Command hccmf-sim explores what-if platform configurations on the
// simulated multi-CPU/GPU machine: pick devices, a dataset shape and a
// partition/communication configuration, and see the planned epoch
// decomposition and simulated timing without training anything.
//
// Usage:
//
//	hccmf-sim -preset r1 -workers 2080S,6242,2080 -epochs 20
//	hccmf-sim -preset ml-20m -workers 2080S -strategy half-Q
//	hccmf-sim -preset netflix -workers 2080S,2080 -partition DP0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hccmf/internal/bus"
	"hccmf/internal/comm"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/device"
	"hccmf/internal/obs"
	"hccmf/internal/partition"
	"hccmf/internal/schedule"
	"hccmf/internal/version"
)

func main() {
	preset := flag.String("preset", "netflix", "dataset preset (netflix, r1, r1star, r2, ml-20m)")
	workersFlag := flag.String("workers", "2080S,6242,2080,6242l", "comma-separated worker devices: 6242, 6242l, 6242-<n>T, 2080, 2080S, V100")
	epochs := flag.Int("epochs", 20, "epochs to simulate")
	k := flag.Int("k", 128, "latent dimension")
	strategyFlag := flag.String("strategy", "", "force a communication strategy: P&Q, Q, half-Q, half-Q/async")
	partitionFlag := flag.String("partition", "", "stop partition refinement at DP0, DP1 or DP2")
	serverThreads := flag.Int("server-threads", 16, "server CPU thread count")
	timeline := flag.Int("timeline", 0, "render an ASCII Gantt of the first N epochs (Figure 5 style)")
	drift := flag.String("drift", "", "run a static-vs-adaptive drift study instead of a platform simulation: comma-separated name:rate0:factor worker trajectories (e.g. 'gpu0:8:0.25,gpu1:4:1,cpu0:2:1')")
	driftEpochs := flag.Int("drift-epochs", 30, "drift study run length in epochs")
	driftCost := flag.Float64("drift-cost", 0.02, "seconds one re-shard costs the adaptive schedule")
	driftHysteresis := flag.Float64("drift-hysteresis", 0.10, "re-shard hysteresis of the drift study's adaptive schedule")
	metricsOut := flag.String("metrics-out", "", "write an hccmf-obs/v1 metrics JSON document (sim gauges) to this file")
	traceOut := flag.String("trace-out", "", "write the simulated timeline as a Chrome trace_event JSON document to this file")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-sim", version.String())
		return
	}

	if *drift != "" {
		if err := runDriftStudy(*drift, *driftEpochs, *driftCost, *driftHysteresis); err != nil {
			fatal(err)
		}
		return
	}

	var observer *obs.Observer
	if *metricsOut != "" || *traceOut != "" {
		observer = obs.NewObserver(0, nil)
	}

	spec, err := dataset.Lookup(*preset)
	if err != nil {
		fatal(err)
	}

	plat := core.Platform{Server: device.Xeon6242(*serverThreads)}
	for _, name := range strings.Split(*workersFlag, ",") {
		w, err := parseWorker(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		plat.Workers = append(plat.Workers, w)
	}

	opts := core.PlanOptions{K: *k}
	if *strategyFlag != "" {
		s, err := parseStrategy(*strategyFlag)
		if err != nil {
			fatal(err)
		}
		opts.ForceStrategy = &s
	}
	if *partitionFlag != "" {
		p, err := parsePartition(*partitionFlag)
		if err != nil {
			fatal(err)
		}
		opts.ForcePartition = &p
	}

	res, err := core.Run(core.RunConfig{
		Spec: spec, Platform: plat, Epochs: *epochs, Plan: opts, Obs: observer,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset : %s (%dx%d, %d ratings)\n", spec.Name, spec.M, spec.N, spec.NNZ)
	fmt.Printf("plan    : %v\n", res.Plan)
	fmt.Printf("epochs  : %d in %.4fs simulated (%.4fs/epoch steady state)\n",
		*epochs, res.Sim.TotalTime, res.Sim.EpochTimes[len(res.Sim.EpochTimes)/2])
	fmt.Printf("power   : %.4g updates/s of %.4g ideal → %.1f%% utilization\n",
		res.Power, res.IdealPower, res.Utilization*100)
	fmt.Println("\nper-worker cumulative phases:")
	fmt.Print(res.Sim.Trace.Format())
	if *timeline > 0 {
		n := *timeline
		if n > len(res.Sim.EpochTimes) {
			n = len(res.Sim.EpochTimes)
		}
		var to float64
		for _, e := range res.Sim.EpochTimes[:n] {
			to += e
		}
		fmt.Printf("\nfirst %d epoch(s):\n%s", n, res.Sim.Timeline.Gantt(0, to, 100))
	}
	if pre, err := core.EstimatePreprocess(plat, spec, res.Plan); err == nil {
		fmt.Printf("\npreprocessing (once per job): %v\n", pre)
	}
	fmt.Println("\ncost model estimate for one epoch:")
	fmt.Printf("  max worker %.4fs, sync total %.4fs (ratio %.1f, hidden=%v)\n",
		res.Plan.Estimate.MaxWorker, res.Plan.Estimate.SyncTotal,
		res.Plan.Estimate.SyncRatio, res.Plan.Estimate.SyncHidden)

	if *metricsOut != "" {
		if err := observer.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("\nmetrics written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := observer.WriteTraceFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}

// runDriftStudy reproduces the Ma & Rusu static-vs-dynamic crossover on
// the closed-form drift model: workers whose throughput drifts over the
// run, a static schedule cut once from the initial rates, and an adaptive
// schedule that re-shards (and pays for it) when the predicted gain clears
// the hysteresis.
func runDriftStudy(spec string, epochs int, cost, hysteresis float64) error {
	var workers []schedule.DriftWorker
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return fmt.Errorf("drift worker %q: want name:rate0:factor", part)
		}
		rate0, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("drift worker %q: rate0: %v", part, err)
		}
		factor, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("drift worker %q: factor: %v", part, err)
		}
		workers = append(workers, schedule.DriftWorker{Name: fields[0], Rate0: rate0, Factor: factor})
	}
	res, err := schedule.SimulateDrift(schedule.DriftStudy{
		Epochs:  epochs,
		Workers: workers,
		Policy: schedule.Config{
			Policy:     schedule.Throughput,
			Hysteresis: hysteresis,
		},
		RebalanceCost: cost,
	})
	if err != nil {
		return err
	}
	fmt.Printf("drift study: %d workers, %d epochs, re-shard cost %.3fs, hysteresis %.0f%%\n",
		len(workers), epochs, cost, hysteresis*100)
	for _, w := range workers {
		fmt.Printf("  %-8s rate %.3g → %.3g entries/s\n", w.Name, w.Rate0, w.Rate0*w.Factor)
	}
	fmt.Printf("\n%6s %12s %12s %12s %12s\n", "epoch", "static(s)", "adaptive(s)", "cum static", "cum adaptive")
	var cs, ca float64
	for e := range res.StaticEpochs {
		cs += res.StaticEpochs[e]
		ca += res.AdaptiveEpochs[e]
		fmt.Printf("%6d %12.4f %12.4f %12.4f %12.4f\n", e, res.StaticEpochs[e], res.AdaptiveEpochs[e], cs, ca)
	}
	fmt.Printf("\nstatic total   %.4fs\nadaptive total %.4fs (%d re-shards)\n",
		res.StaticTotal, res.AdaptiveTotal, res.Rebalances)
	if res.CrossoverEpoch >= 0 {
		fmt.Printf("crossover at epoch %d: adaptive cumulative time dips below static and stays ahead as the drift grows\n", res.CrossoverEpoch)
	} else {
		fmt.Println("no crossover within the horizon: the drift never outgrew the re-shard bill")
	}
	return nil
}

func parseWorker(name string) (core.WorkerSpec, error) {
	switch strings.ToUpper(name) {
	case "2080":
		return core.WorkerSpec{Device: device.RTX2080(), Bus: bus.PCIe3x16}, nil
	case "2080S":
		return core.WorkerSpec{Device: device.RTX2080Super(), Bus: bus.PCIe3x16}, nil
	case "V100":
		return core.WorkerSpec{Device: device.TeslaV100(), Bus: bus.PCIe3x16}, nil
	case "6242":
		return core.WorkerSpec{Device: device.Xeon6242(24), Bus: bus.UPI}, nil
	case "6242L":
		return core.WorkerSpec{Device: device.Xeon6242(10), Bus: bus.Local, TimeShared: true}, nil
	}
	upper := strings.ToUpper(name)
	if strings.HasPrefix(upper, "6242-") && strings.HasSuffix(upper, "T") {
		t := strings.TrimSuffix(strings.TrimPrefix(upper, "6242-"), "T")
		threads, err := strconv.Atoi(t)
		if err == nil && threads >= 1 && threads <= 48 {
			return core.WorkerSpec{Device: device.Xeon6242(threads), Bus: bus.UPI}, nil
		}
	}
	return core.WorkerSpec{}, fmt.Errorf("unknown worker %q", name)
}

func parseStrategy(s string) (comm.Strategy, error) {
	switch strings.ToLower(s) {
	case "p&q", "pq":
		return comm.Strategy{Encoding: comm.FP32, Streams: 1}, nil
	case "q":
		return comm.Strategy{QOnly: true, Encoding: comm.FP32, Streams: 1}, nil
	case "half-q", "halfq":
		return comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 1}, nil
	case "half-q/async", "async":
		return comm.Strategy{QOnly: true, Encoding: comm.FP16, Streams: 4}, nil
	}
	return comm.Strategy{}, fmt.Errorf("unknown strategy %q", s)
}

func parsePartition(s string) (partition.Strategy, error) {
	switch strings.ToUpper(s) {
	case "DP0":
		return partition.DP0Strategy, nil
	case "DP1":
		return partition.DP1Strategy, nil
	case "DP2":
		return partition.DP2Strategy, nil
	}
	return 0, fmt.Errorf("unknown partition strategy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hccmf-sim:", err)
	os.Exit(1)
}
