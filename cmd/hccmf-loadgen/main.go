// Command hccmf-loadgen drives a running hccmf-serve with top-N traffic
// and reports latency percentiles and throughput. The summary is printed
// as a table and, with -out, written as a versioned hccmf-bench document
// carrying a serving group (hccmf-bench/serve/v1) — the same shape the
// in-process harness in internal/kernelbench emits, so hccmf-benchdiff
// compares load-test runs like any other benchmark report.
//
// Usage:
//
//	hccmf-serve -synthetic 2000x1000x32 -addr 127.0.0.1:8080 &
//	hccmf-loadgen -addr 127.0.0.1:8080 -requests 5000 -concurrency 8 -n 10
//	hccmf-loadgen -addr 127.0.0.1:8080 -batch 32 -out serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hccmf/internal/kernelbench"
	"hccmf/internal/sparse"
	"hccmf/internal/version"
)

func main() {
	addr := flag.String("addr", "", "hccmf-serve address (host:port) or base URL")
	requests := flag.Int("requests", 2000, "total requests to issue")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "concurrent client workers")
	n := flag.Int("n", 10, "items requested per user")
	batch := flag.Int("batch", 0, "users per request: 0 issues single-user GETs, >0 issues batch POSTs")
	seed := flag.Uint64("seed", 1, "seed of the random user sequence")
	out := flag.String("out", "", "write the hccmf-bench JSON document here ('-' for stdout)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-loadgen", version.String())
		return
	}
	if *addr == "" {
		fatal(fmt.Errorf("-addr is required"))
	}
	cfg := config{
		base:        baseURL(*addr),
		requests:    *requests,
		concurrency: *concurrency,
		n:           *n,
		batch:       *batch,
		seed:        *seed,
	}
	rep, err := run(cfg, http.DefaultClient)
	if err != nil {
		fatal(err)
	}
	printSummary(os.Stdout, rep.Serve)
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *out == "-" {
			os.Stdout.Write(buf)
		} else {
			if err := os.WriteFile(*out, buf, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "hccmf-loadgen: report written to %s\n", *out)
		}
	}
}

// config is one load run's shape.
type config struct {
	base        string // normalized base URL, no trailing slash
	requests    int
	concurrency int
	n           int
	batch       int
	seed        uint64
}

// baseURL normalizes a host:port or URL flag value.
func baseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// discover asks /healthz for the served model's user/item space so the
// generated user IDs stay in range.
func discover(base string, client *http.Client) (users, items int, err error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, 0, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var gen int64
	if _, err := fmt.Sscanf(string(body), "ok generation=%d users=%d items=%d", &gen, &users, &items); err != nil {
		return 0, 0, fmt.Errorf("healthz: unrecognized body %q", strings.TrimSpace(string(body)))
	}
	if users <= 0 {
		return 0, 0, fmt.Errorf("healthz: %d users", users)
	}
	return users, items, nil
}

// run fires cfg.requests at the target and aggregates the summary into a
// benchmark report. Workers draw users from per-worker seeded streams, so
// a run is reproducible for fixed (seed, concurrency).
func run(cfg config, client *http.Client) (*kernelbench.Report, error) {
	if cfg.requests <= 0 {
		return nil, fmt.Errorf("loadgen: requests = %d", cfg.requests)
	}
	if cfg.concurrency <= 0 {
		cfg.concurrency = 1
	}
	users, items, err := discover(cfg.base, client)
	if err != nil {
		return nil, err
	}

	var (
		next     atomic.Int64 // request ticket counter
		errCount atomic.Int64
		wg       sync.WaitGroup
		perWork  = make([][]time.Duration, cfg.concurrency)
	)
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sparse.NewRand(cfg.seed + uint64(w)*0x9e3779b97f4a7c15)
			lat := make([]time.Duration, 0, cfg.requests/cfg.concurrency+1)
			var batchBuf bytes.Buffer
			for {
				if next.Add(1) > int64(cfg.requests) {
					break
				}
				var err error
				t0 := time.Now()
				if cfg.batch > 0 {
					err = doBatch(client, cfg, rng, users, &batchBuf)
				} else {
					err = doSingle(client, cfg, rng, users)
				}
				lat = append(lat, time.Since(t0))
				if err != nil {
					errCount.Add(1)
				}
			}
			perWork[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lat := range perWork {
		all = append(all, lat...)
	}
	name := fmt.Sprintf("TopN%d", cfg.n)
	if cfg.batch > 0 {
		name = fmt.Sprintf("TopN%dBatch%d", cfg.n, cfg.batch)
	}
	rep := &kernelbench.Report{
		Schema:      kernelbench.Schema,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Count:       1,
		Workload:    kernelbench.Workload{Rows: users, Cols: items},
		ServeSchema: kernelbench.ServeSchema,
		Serve:       []kernelbench.ServeResult{kernelbench.SummarizeServe(name, all, errCount.Load(), elapsed)},
	}
	return rep, nil
}

// doSingle issues one GET /topn and drains the response (keep-alive needs
// the body consumed). Non-200 statuses count as errors.
func doSingle(client *http.Client, cfg config, rng *sparse.Rand, users int) error {
	u := int(rng.Uint64n(uint64(users)))
	resp, err := client.Get(fmt.Sprintf("%s/topn?user=%d&n=%d", cfg.base, u, cfg.n))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// doBatch issues one POST /topn with cfg.batch random users.
func doBatch(client *http.Client, cfg config, rng *sparse.Rand, users int, buf *bytes.Buffer) error {
	buf.Reset()
	buf.WriteString(`{"n":`)
	fmt.Fprintf(buf, "%d", cfg.n)
	buf.WriteString(`,"users":[`)
	for i := 0; i < cfg.batch; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(buf, "%d", rng.Uint64n(uint64(users)))
	}
	buf.WriteString("]}")
	resp, err := client.Post(cfg.base+"/topn", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// printSummary renders the serving results as an aligned table.
func printSummary(w io.Writer, results []kernelbench.ServeResult) {
	fmt.Fprintf(w, "%-16s %10s %8s %12s %10s %10s %10s\n",
		"scenario", "requests", "errors", "qps", "p50(µs)", "p99(µs)", "mean(µs)")
	for _, r := range results {
		fmt.Fprintf(w, "%-16s %10d %8d %12.1f %10.1f %10.1f %10.1f\n",
			r.Name, r.Requests, r.Errors, r.QPS, r.P50us, r.P99us, r.MeanUs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hccmf-loadgen:", err)
	os.Exit(1)
}
