package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"

	"hccmf/internal/kernelbench"
)

// stubServe mimics the hccmf-serve surface the load generator touches:
// /healthz in the daemon's text form and /topn for both methods.
func stubServe(t *testing.T, users, items int, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok generation=1 users=%d items=%d\n", users, items)
	})
	mux.HandleFunc("/topn", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		switch r.Method {
		case http.MethodGet:
			u, err := strconv.Atoi(r.URL.Query().Get("user"))
			if err != nil || u < 0 || u >= users {
				http.Error(w, "bad user", http.StatusBadRequest)
				return
			}
			fmt.Fprintf(w, `{"user":%d,"n":5,"generation":1,"items":[{"id":1,"score":2}]}`, u)
		case http.MethodPost:
			var req struct {
				Users []int32 `json:"users"`
				N     int     `json:"n"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Users) == 0 {
				http.Error(w, "bad body", http.StatusBadRequest)
				return
			}
			for _, u := range req.Users {
				if u < 0 || int(u) >= users {
					http.Error(w, "bad user", http.StatusBadRequest)
					return
				}
			}
			fmt.Fprint(w, `{"n":5,"generation":1,"results":[]}`)
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunSingles(t *testing.T) {
	var hits atomic.Int64
	ts := stubServe(t, 40, 90, &hits)
	rep, err := run(config{base: ts.URL, requests: 120, concurrency: 4, n: 5, seed: 9}, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 120 {
		t.Fatalf("server saw %d requests, want 120", hits.Load())
	}
	if rep.Schema != kernelbench.Schema || rep.ServeSchema != kernelbench.ServeSchema {
		t.Fatalf("schemas: %q %q", rep.Schema, rep.ServeSchema)
	}
	if rep.Workload.Rows != 40 || rep.Workload.Cols != 90 {
		t.Fatalf("workload from healthz: %+v", rep.Workload)
	}
	if len(rep.Serve) != 1 {
		t.Fatalf("serve groups: %+v", rep.Serve)
	}
	r := rep.Serve[0]
	if r.Name != "TopN5" || r.Requests != 120 || r.Errors != 0 {
		t.Fatalf("summary: %+v", r)
	}
	if r.QPS <= 0 || r.P50us <= 0 || r.P99us < r.P50us || r.MeanUs <= 0 {
		t.Fatalf("implausible latency summary: %+v", r)
	}
}

func TestRunBatchAndBenchdiffRoundTrip(t *testing.T) {
	var hits atomic.Int64
	ts := stubServe(t, 40, 90, &hits)
	rep, err := run(config{base: ts.URL, requests: 30, concurrency: 2, n: 5, batch: 8, seed: 3}, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serve[0].Name != "TopN5Batch8" || rep.Serve[0].Requests != 30 {
		t.Fatalf("summary: %+v", rep.Serve[0])
	}

	// The written document must round-trip through the benchdiff loader
	// and diff against itself as the serve group.
	path := filepath.Join(t.TempDir(), "serve.json")
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := kernelbench.LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	deltas := kernelbench.Diff(loaded, loaded, 0.15)
	if len(deltas) != 1 || deltas[0].Group != "serve" || deltas[0].Ratio != 1 {
		t.Fatalf("self-diff: %+v", deltas)
	}
	if deltas[0].Regressed {
		t.Fatalf("self-diff regressed: %+v", deltas[0])
	}
}

func TestRunCountsErrors(t *testing.T) {
	// A user space larger than the server's triggers 400s for out-of-range
	// draws; the run completes and reports them as errors.
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok generation=1 users=10 items=10\n")
	})
	mux.HandleFunc("/topn", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	rep, err := run(config{base: ts.URL, requests: 20, concurrency: 2, n: 5, seed: 1}, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serve[0].Errors != 20 || rep.Serve[0].Requests != 20 {
		t.Fatalf("errors not counted: %+v", rep.Serve[0])
	}
}

func TestDiscoverRejectsBadHealthz(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "something else\n")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if _, _, err := discover(ts.URL, ts.Client()); err == nil {
		t.Fatal("unrecognized healthz accepted")
	}
	if _, err := run(config{base: ts.URL, requests: 0}, ts.Client()); err == nil {
		t.Fatal("requests=0 accepted")
	}
}

func TestBaseURL(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8080":         "http://127.0.0.1:8080",
		"http://host:1/":         "http://host:1",
		"https://example.com/x/": "https://example.com/x",
	}
	for in, want := range cases {
		if got := baseURL(in); got != want {
			t.Errorf("baseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
