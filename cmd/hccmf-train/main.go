// Command hccmf-train trains an SGD-based matrix factorization model with
// the HCC-MF framework: it plans the run (grid, communication strategy,
// data partition) for the simulated multi-CPU/GPU platform and really
// trains on the data, reporting per-epoch RMSE against a held-out split
// and the simulated wall clock of the full-size problem.
//
// Usage:
//
//	hccmf-train -preset netflix -scale 0.002 -epochs 30 -k 16
//	hccmf-train -input ratings.txt -epochs 20
//	hccmf-train -preset netflix -scale 0.002 -connect 127.0.0.1:9770
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"hccmf/internal/comm"
	commnet "hccmf/internal/comm/net"
	"hccmf/internal/core"
	"hccmf/internal/dataset"
	"hccmf/internal/mf"
	"hccmf/internal/obs"
	"hccmf/internal/recommend"
	"hccmf/internal/schedule"
	"hccmf/internal/sparse"
	"hccmf/internal/version"
)

func main() {
	preset := flag.String("preset", "netflix", "dataset preset (netflix, r1, r1star, r2, ml-20m)")
	input := flag.String("input", "", "train on a ratings file (text 'm n nnz' header + 'u i r' lines) instead of a preset")
	scale := flag.Float64("scale", 0.002, "materialisation scale for preset data (0<s≤1)")
	epochs := flag.Int("epochs", 20, "training epochs")
	k := flag.Int("k", 16, "latent dimension of the real training run")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 4, "number of platform workers (1-4)")
	decay := flag.Float64("decay", 0, "learning-rate decay β for γ_t = γ0/(1+β·t^1.5); 0 keeps the paper's constant rate")
	save := flag.String("save", "", "write the trained factor model to this file")
	recN := flag.Int("recommend", 0, "print top-N recommendations for a few sample users")
	ioWorkers := flag.Int("io-workers", runtime.GOMAXPROCS(0), "parser workers for -input loading; 1 selects the serial reference parser")
	faultRate := flag.Float64("fault-rate", 0, "inject transient transport failures with this per-transfer probability (chaos testing)")
	faultTrunc := flag.Float64("fault-trunc", 0, "inject payload truncation with this per-transfer probability")
	faultSeed := flag.Uint64("fault-seed", 42, "seed of the injected fault schedule")
	retries := flag.Int("retries", 0, "per-transfer attempt budget with capped exponential backoff; <2 disables retry")
	evict := flag.Bool("evict", false, "evict workers that exhaust the retry budget instead of aborting the run")
	transport := flag.String("transport", comm.KindShared,
		"communication transport: "+strings.Join(comm.Kinds(), ", ")+" ("+commnet.Kind+" needs -connect)")
	connect := flag.String("connect", "",
		"address of a running hccmf-ps parameter server (implies -transport "+commnet.Kind+")")
	netTimeout := flag.Duration("net-timeout", commnet.DefaultOpTimeout, "per-operation deadline for wire transports")
	metricsOut := flag.String("metrics-out", "", "write an hccmf-obs/v1 metrics JSON document to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON document (load in chrome://tracing or Perfetto) to this file")
	progress := flag.Bool("progress", false, "print a per-epoch progress line to stderr while training")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	fastMath := flag.Bool("fast-math", false, "enable the versioned fast-math kernels (reordered accumulation, SoA batching, tiled traversal); results follow the fast-math goldens instead of the default bit-exact contract")
	rebalance := flag.Bool("rebalance", false, "adaptively re-shard the training data at epoch boundaries from observed per-worker throughput")
	rebHysteresis := flag.Float64("rebalance-hysteresis", 0, "predicted makespan gain a re-shard must exceed (0 uses the default, "+fmt.Sprintf("%.2f", schedule.DefaultHysteresis)+")")
	rebMinEpochs := flag.Int("rebalance-min-epochs", 0, "minimum epochs between re-shards (0 uses the default, "+fmt.Sprintf("%d", schedule.DefaultMinEpochs)+")")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-train", version.String())
		return
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "hccmf-train: pprof:", err)
			}
		}()
	}

	var observer *obs.Observer
	if *metricsOut != "" || *traceOut != "" || *progress || *rebalance {
		// -rebalance needs per-worker phase timing, which rides on the
		// observer's clock; create one implicitly.
		observer = obs.NewObserver(0, nil)
	}

	var schedCfg schedule.Config
	if *rebalance {
		schedCfg = schedule.Config{
			Policy:     schedule.Throughput,
			Hysteresis: *rebHysteresis,
			MinEpochs:  *rebMinEpochs,
		}
	}

	plat := core.PaperPlatformOverall().FirstWorkers(*workers)

	var spec dataset.Spec
	var data *dataset.Dataset
	if *input != "" {
		m, err := loadFile(*input, *ioWorkers)
		if err != nil {
			fatal(err)
		}
		train, test, err := m.SplitTrainTest(sparse.NewRand(*seed), 0.1)
		if err != nil {
			fatal(err)
		}
		spec = dataset.Spec{
			Name: "file", M: m.Rows, N: m.Cols, NNZ: int64(m.NNZ()),
			Rank:   *k,
			Params: dataset.Params{Gamma: 0.005, Lambda1: 0.01, Lambda2: 0.01},
		}
		data = &dataset.Dataset{Spec: spec, Train: train, Test: test}
	} else {
		s, err := dataset.Lookup(*preset)
		if err != nil {
			fatal(err)
		}
		spec = s
	}

	var lrSchedule mf.Schedule
	if *decay > 0 {
		lrSchedule = mf.InverseDecay{Gamma0: spec.Params.Gamma, Beta: float32(*decay)}
	}
	kind := *transport
	if *connect != "" {
		kind = commnet.Kind
	} else if kind == commnet.Kind {
		fatal(fmt.Errorf("-transport %s needs -connect with the hccmf-ps address", commnet.Kind))
	}
	res, err := core.Run(core.RunConfig{
		Spec:             spec,
		Platform:         plat,
		Epochs:           *epochs,
		Plan:             core.PlanOptions{},
		MaterializeScale: *scale,
		RealK:            *k,
		Data:             data,
		LRSchedule:       lrSchedule,
		Schedule:         schedCfg,
		Seed:             *seed,
		TransportSpec:    comm.Spec{Kind: kind, Addr: *connect, OpTimeout: *netTimeout},
		Tuning:           core.Tuning{FastMath: *fastMath},
		Obs:              observer,
		OnEpoch: func(epoch, total int, rmse, simSeconds float64) {
			if *progress {
				fmt.Fprintf(os.Stderr, "epoch %d/%d  rmse %.6f  sim %.3fs\n", epoch+1, total, rmse, simSeconds)
			}
		},
		Resilience: core.Resilience{
			Fault: comm.FaultSpec{
				Transient: *faultRate,
				Truncate:  *faultTrunc,
				Seed:      *faultSeed,
			},
			Retry: comm.RetryPolicy{
				Attempts:  *retries,
				BaseDelay: time.Millisecond,
				MaxDelay:  100 * time.Millisecond,
			},
			EvictOnFailure: *evict,
		},
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("plan: %v\n", res.Plan)
	if *fastMath {
		fmt.Printf("fast-math: on (kernel %s)\n", mf.KernelName(*k, true))
	}
	fmt.Printf("simulated full-size run: %.3fs for %d epochs (%.3g updates/s, %.0f%% of ideal)\n",
		res.Sim.TotalTime, *epochs, res.Power, res.Utilization*100)
	fmt.Println("\nconvergence (simulated time axis):")
	fmt.Printf("%6s %12s %10s\n", "epoch", "time(s)", "rmse")
	for _, p := range res.Curve.Points {
		fmt.Printf("%6d %12.4f %10.6f\n", p.Epoch, p.Time, p.RMSE)
	}
	fmt.Printf("\nfinal RMSE: %.6f\n", res.FinalRMSE)
	fmt.Printf("communication: %.1f MiB over the bus, %d copies, %d retries\n",
		float64(res.CommStats.BusBytes)/(1<<20), res.CommStats.Copies, res.CommStats.Retries)
	if res.CommStats.Frames > 0 {
		fmt.Printf("wire: %.1f MiB in %d frames, %d handshakes\n",
			float64(res.CommStats.WireBytes)/(1<<20), res.CommStats.Frames, res.CommStats.Handshakes)
	}
	for _, ev := range res.Evictions {
		fmt.Printf("evicted worker %s in epoch %d (rows [%d,%d) → %s): %v\n",
			ev.Worker, ev.Epoch, ev.RowLo, ev.RowHi, ev.InheritedBy, ev.Err)
	}
	if *rebalance {
		fmt.Printf("adaptive scheduling: %d re-shard(s)\n", len(res.Rebalances))
		for _, rb := range res.Rebalances {
			forced := ""
			if rb.Forced {
				forced = " (forced by eviction)"
			}
			fmt.Printf("  epoch %d: shares %s, predicted gain %.1f%%%s\n",
				rb.Epoch, formatShares(rb.Shares), rb.Gain*100, forced)
		}
	}
	fmt.Println("\nper-phase simulated time:")
	fmt.Print(res.Sim.Trace.Format())

	if *metricsOut != "" {
		if err := observer.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("\nmetrics written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := observer.WriteTraceFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := mf.WriteFactors(f, res.Model); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nmodel saved to %s (%dx%d, k=%d)\n", *save, res.Model.M, res.Model.N, res.Model.K)
	}

	if *recN > 0 {
		rec, err := recommend.New(res.Model, res.Model.M, res.Model.N)
		if err != nil {
			fatal(err)
		}
		if err := rec.MarkSeen(res.TrainedData.Train); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntop-%d recommendations for sample users", *recN)
		if res.Plan.Transposed {
			fmt.Print(" (note: problem was transposed; 'users' are the original items)")
		}
		fmt.Println()
		for u := int32(0); u < 3 && int(u) < res.Model.M; u++ {
			top, err := rec.TopN(u, *recN)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  user %d:", u)
			for _, it := range top {
				fmt.Printf(" %d(%.2f)", it.ID, it.Score)
			}
			fmt.Println()
		}
		hr, err := rec.HitRateAtN(res.TrainedData.Test, 10, 4)
		if err == nil {
			fmt.Printf("hit-rate@10 on held-out data: %.3f\n", hr)
		}
	}
}

func formatShares(shares []float64) string {
	parts := make([]string, len(shares))
	for i, s := range shares {
		parts[i] = fmt.Sprintf("%.3f", s)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func loadFile(path string, workers int) (*sparse.COO, error) {
	// The magic decides the format: binary decode errors (truncation,
	// corruption) propagate instead of being masked by a text re-parse.
	return dataset.ReadRatingsFile(path, workers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hccmf-train:", err)
	os.Exit(1)
}
