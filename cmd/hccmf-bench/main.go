// Command hccmf-bench regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's row format. With
// -report it also writes a machine-readable record of the key numbers.
// With -json it instead runs the hot-path kernel micro-benchmark suite
// (internal/kernelbench) and writes a versioned JSON document — the
// format checked in as BENCH_*.json (see DESIGN.md §9).
//
// Usage:
//
//	hccmf-bench [-only figure3,table4,...] [-fig7-scale 0.002]
//	            [-fig7-epochs 40] [-report out.txt]
//	hccmf-bench -json bench.json [-json-count 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hccmf/internal/experiments"
	"hccmf/internal/kernelbench"
	"hccmf/internal/version"
)

func main() {
	only := flag.String("only", "", "comma-separated subset: figure3,table2,figure5,figure7,table4,figure8,table5,figure9,table6,relatedwork")
	fig7Scale := flag.Float64("fig7-scale", 0.002, "dataset scale factor for the real-training convergence study")
	fig7Epochs := flag.Int("fig7-epochs", 40, "epochs for the convergence study")
	fig7K := flag.Int("fig7-k", 16, "latent dimension for the real-training study")
	seed := flag.Uint64("seed", 7, "random seed for generated data")
	report := flag.String("report", "", "also write the output to this file")
	jsonOut := flag.String("json", "", "run the kernel micro-benchmark suite and write its JSON report to this file ('-' for stdout); tables/figures are skipped unless -only selects them")
	jsonCount := flag.Int("json-count", 3, "benchmark runs averaged per kernel in -json mode")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation heap profile at exit to this file")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-bench", version.String())
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hccmf-bench: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hccmf-bench: cpuprofile:", err)
			os.Exit(1)
		}
		// The error paths below exit through os.Exit and drop the partial
		// profile — acceptable for a diagnostics flag on a failed run.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hccmf-bench: cpuprofile:", err)
			}
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hccmf-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hccmf-bench: memprofile:", err)
			}
		}()
	}

	if *jsonOut != "" {
		if err := writeKernelReport(*jsonOut, *jsonCount); err != nil {
			fmt.Fprintln(os.Stderr, "hccmf-bench:", err)
			os.Exit(1)
		}
		// -json alone is a pure kernel-bench run; combining it with -only
		// still regenerates the selected tables below.
		if *only == "" {
			return
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	var out strings.Builder
	emit := func(s string) {
		fmt.Print(s)
		out.WriteString(s)
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "hccmf-bench: %s: %v\n", name, err)
		os.Exit(1)
	}

	if selected("figure3") {
		r, err := experiments.Figure3()
		if err != nil {
			fail("figure3", err)
		}
		emit(r.Format() + "\n")
	}
	if selected("table2") {
		r, err := experiments.Table2()
		if err != nil {
			fail("table2", err)
		}
		emit(r.Format() + "\n")
	}
	if selected("figure5") {
		r, err := experiments.Figure5()
		if err != nil {
			fail("figure5", err)
		}
		emit(r.Format() + "\n")
	}
	if selected("figure7") {
		r, err := experiments.Figure7(*fig7Scale, *fig7Epochs, *fig7K, *seed)
		if err != nil {
			fail("figure7", err)
		}
		emit(r.Format() + "\n")
		for _, c := range r.Curves {
			emit(c.HCC.Format())
			emit(c.FPSGD.Format())
			emit(c.CuMF.Format())
			emit("\n")
		}
	}
	if selected("table4") {
		r, err := experiments.Table4()
		if err != nil {
			fail("table4", err)
		}
		emit(r.Format() + "\n")
	}
	if selected("figure8") {
		r, err := experiments.Figure8()
		if err != nil {
			fail("figure8", err)
		}
		emit(r.Format() + "\n")
	}
	if selected("table5") {
		r, err := experiments.Table5()
		if err != nil {
			fail("table5", err)
		}
		emit(r.Format() + "\n")
	}
	if selected("figure9") {
		r, err := experiments.Figure9()
		if err != nil {
			fail("figure9", err)
		}
		emit(r.Format() + "\n")
	}
	if selected("table6") {
		r, err := experiments.Table6()
		if err != nil {
			fail("table6", err)
		}
		emit(r.Format() + "\n")
	}

	if selected("relatedwork") {
		r, err := experiments.RelatedWork()
		if err != nil {
			fail("relatedwork", err)
		}
		emit(r.Format() + "\n")
	}

	if *report != "" {
		if err := os.WriteFile(*report, []byte(out.String()), 0o644); err != nil {
			fail("report", err)
		}
		fmt.Fprintf(os.Stderr, "hccmf-bench: report written to %s\n", *report)
	}
}

// writeKernelReport runs the kernelbench suite and writes the versioned
// JSON document (kernelbench.Schema) to path, or stdout for "-".
func writeKernelReport(path string, count int) error {
	fmt.Fprintf(os.Stderr, "hccmf-bench: running kernel suite (%d run(s) per benchmark, ~1s each)\n", count)
	rep := kernelbench.Collect(count)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hccmf-bench: kernel report written to %s\n", path)
	return nil
}
