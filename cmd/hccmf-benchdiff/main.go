// Command hccmf-benchdiff compares kernel benchmark reports and flags
// performance regressions. With no -candidate it runs the micro-benchmark
// suite fresh (like `hccmf-bench -json`); with no -baseline it picks the
// newest checked-in BENCH_*.json. CI runs it report-only; pass
// -fail-on-regress to turn flagged kernels into a non-zero exit.
//
// Usage:
//
//	hccmf-benchdiff                            # fresh run vs newest BENCH_*.json
//	hccmf-benchdiff -candidate new.json        # saved run vs newest baseline
//	hccmf-benchdiff -baseline a.json -candidate b.json -fail-on-regress
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hccmf/internal/kernelbench"
	"hccmf/internal/version"
)

func main() {
	baseline := flag.String("baseline", "", "baseline report: bare kernel report or BENCH_*.json comparison (default: newest BENCH_*.json in -dir)")
	candidate := flag.String("candidate", "", "candidate report file (default: run the benchmark suite fresh)")
	dir := flag.String("dir", ".", "directory searched for BENCH_*.json when -baseline is unset")
	count := flag.Int("count", 3, "benchmark runs averaged per kernel when measuring fresh")
	threshold := flag.Float64("threshold", 0.15, "relative slowdown that counts as a regression (0.15 = 15%)")
	groups := flag.String("groups", "", "comma-separated benchmark groups to compare (kernel, ingest, serve, schedule; default all)")
	normalize := flag.Bool("normalize", false, "divide ratios by the suite median before flagging, cancelling uniform machine-wide drift")
	failOnRegress := flag.Bool("fail-on-regress", false, "exit non-zero when any kernel regresses (CI runs report-only without this)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-benchdiff", version.String())
		return
	}

	basePath := *baseline
	if basePath == "" {
		latest, err := kernelbench.LatestBaseline(*dir)
		if err != nil {
			fatal(err)
		}
		basePath = latest
	}
	base, err := kernelbench.LoadReport(basePath)
	if err != nil {
		fatal(err)
	}

	var cand kernelbench.Report
	if *candidate != "" {
		cand, err = kernelbench.LoadReport(*candidate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("baseline : %s\ncandidate: %s\n\n", basePath, *candidate)
	} else {
		fmt.Printf("baseline : %s\ncandidate: fresh run (count=%d)\n\n", basePath, *count)
		cand = kernelbench.Collect(*count)
	}

	deltas := kernelbench.Diff(base, cand, *threshold)
	if *groups != "" {
		want := make(map[string]bool)
		for _, g := range strings.Split(*groups, ",") {
			want[strings.TrimSpace(g)] = true
		}
		kept := deltas[:0]
		for _, d := range deltas {
			if want[d.Group] {
				kept = append(kept, d)
			}
		}
		deltas = kept
	}
	if len(deltas) == 0 {
		fmt.Println("no comparable kernels between the two reports")
		return
	}
	if *normalize {
		m := kernelbench.MedianRatio(deltas)
		deltas = kernelbench.Normalize(deltas, m, *threshold)
		fmt.Printf("normalized by suite median ratio %.3f (ambient drift %+.1f%%)\n\n", m, (m-1)*100)
	}
	fmt.Print(kernelbench.FormatDeltas(deltas))

	regs := kernelbench.Regressions(deltas)
	if len(regs) == 0 {
		fmt.Printf("\nno regressions beyond %.0f%%\n", *threshold*100)
		return
	}
	fmt.Printf("\n%d kernel(s) regressed beyond %.0f%%\n", len(regs), *threshold*100)
	if *failOnRegress {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hccmf-benchdiff:", err)
	os.Exit(1)
}
