// Command hccmf-datagen materialises synthetic rating datasets with the
// shapes of the paper's evaluation sets (Table 3) and writes them in the
// text or binary interchange format, or converts between the two.
//
// Usage:
//
//	hccmf-datagen -preset netflix -scale 0.01 -out netflix.bin
//	hccmf-datagen -preset r2 -scale 0.001 -format text -out r2.txt
//	hccmf-datagen -convert in.txt -out out.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"hccmf/internal/dataset"
	"hccmf/internal/sparse"
	"hccmf/internal/version"
)

func main() {
	preset := flag.String("preset", "netflix", "dataset preset (netflix, r1, r1star, r2, ml-20m)")
	scale := flag.Float64("scale", 0.01, "shape scale factor (0<s≤1)")
	format := flag.String("format", "", "output format: text or binary (default: by extension, .txt=text)")
	out := flag.String("out", "", "output path (required)")
	seed := flag.Uint64("seed", 1, "generation seed")
	convert := flag.String("convert", "", "convert this ratings file instead of generating")
	split := flag.Bool("split", false, "write separate .train/.test files (90/10)")
	ioWorkers := flag.Int("io-workers", runtime.GOMAXPROCS(0), "parser workers for -convert loading; 1 selects the serial reference parser")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-datagen", version.String())
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	var m *sparse.COO
	if *convert != "" {
		loaded, err := readAny(*convert, *ioWorkers)
		if err != nil {
			fatal(err)
		}
		m = loaded
	} else {
		spec, err := dataset.Lookup(*preset)
		if err != nil {
			fatal(err)
		}
		if *scale < 1 {
			spec, err = spec.Scaled(*scale)
			if err != nil {
				fatal(err)
			}
		}
		ds, err := dataset.Generate(spec, *seed)
		if err != nil {
			fatal(err)
		}
		if *split {
			if err := writeAny(trainPath(*out), ds.Train, *format); err != nil {
				fatal(err)
			}
			if err := writeAny(testPath(*out), ds.Test, *format); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d ratings) and %s (%d ratings)\n",
				trainPath(*out), ds.Train.NNZ(), testPath(*out), ds.Test.NNZ())
			return
		}
		// Single file: merge splits back.
		merged := ds.Train.Clone()
		merged.Entries = append(merged.Entries, ds.Test.Entries...)
		m = merged
	}

	if err := writeAny(*out, m, *format); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %dx%d matrix, %d ratings\n", *out, m.Rows, m.Cols, m.NNZ())
}

func isText(path, format string) bool {
	if format != "" {
		return format == "text"
	}
	ext := strings.ToLower(filepath.Ext(path))
	return ext == ".txt" || ext == ".tsv" || ext == ".dat"
}

func readAny(path string, workers int) (*sparse.COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if isText(path, "") {
		return dataset.ReadTextWorkers(f, workers)
	}
	return dataset.ReadBinary(f)
}

func writeAny(path string, m *sparse.COO, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if isText(path, format) {
		return dataset.WriteText(f, m)
	}
	return dataset.WriteBinary(f, m)
}

func trainPath(base string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + ".train" + ext
}

func testPath(base string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + ".test" + ext
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hccmf-datagen:", err)
	os.Exit(1)
}
