// Command hccmf-recommend serves top-N recommendations from a factor
// model trained and saved by hccmf-train, excluding items the user already
// rated in the given ratings file.
//
// Usage:
//
//	hccmf-train -preset netflix -scale 0.01 -save model.bin
//	hccmf-datagen -preset netflix -scale 0.01 -out ratings.txt
//	hccmf-recommend -model model.bin -ratings ratings.txt -user 42 -n 10
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hccmf/internal/dataset"
	"hccmf/internal/mf"
	"hccmf/internal/recommend"
	"hccmf/internal/sparse"
	"hccmf/internal/version"
)

func main() {
	modelPath := flag.String("model", "", "trained model file (from hccmf-train -save)")
	ratingsPath := flag.String("ratings", "", "ratings file for seen-item exclusion (text or binary)")
	user := flag.Int("user", 0, "user to recommend for")
	n := flag.Int("n", 10, "number of recommendations")
	evalHitRate := flag.Bool("eval", false, "also report hit-rate@N on a 10% held-out split of the ratings")
	ioWorkers := flag.Int("io-workers", runtime.GOMAXPROCS(0), "parser workers for -ratings loading; 1 selects the serial reference parser")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-recommend", version.String())
		return
	}

	if *modelPath == "" {
		fatal(fmt.Errorf("-model is required"))
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model: %d users × %d items, k=%d\n", model.M, model.N, model.K)

	rec, err := recommend.New(model, model.M, model.N)
	if err != nil {
		fatal(err)
	}

	var ratings *sparse.COO
	if *ratingsPath != "" {
		ratings, err = loadRatings(*ratingsPath, *ioWorkers)
		if err != nil {
			fatal(err)
		}
		if ratings.Rows != model.M || ratings.Cols != model.N {
			fatal(fmt.Errorf("ratings %dx%d do not match model %dx%d",
				ratings.Rows, ratings.Cols, model.M, model.N))
		}
		if *evalHitRate {
			train, test, err := ratings.SplitTrainTest(sparse.NewRand(1), 0.1)
			if err != nil {
				fatal(err)
			}
			if err := rec.MarkSeen(train); err != nil {
				fatal(err)
			}
			hr, err := rec.HitRateAtN(test, *n, 4)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("hit-rate@%d on held-out 10%%: %.3f\n", *n, hr)
		} else if err := rec.MarkSeen(ratings); err != nil {
			fatal(err)
		}
	}

	top, err := rec.TopN(int32(*user), *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntop-%d for user %d:\n", *n, *user)
	for rank, it := range top {
		fmt.Printf("%3d. item %-8d score %.3f\n", rank+1, it.ID, it.Score)
	}
}

func loadModel(path string) (*mf.Factors, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mf.ReadFactors(f)
}

func loadRatings(path string, workers int) (*sparse.COO, error) {
	// The magic decides the format: binary decode errors (truncation,
	// corruption) propagate instead of being masked by a text re-parse.
	return dataset.ReadRatingsFile(path, workers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hccmf-recommend:", err)
	os.Exit(1)
}
