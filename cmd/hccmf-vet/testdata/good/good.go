// Package costmodel is a known-good smoke fixture: simulated time only,
// seeded randomness, errors instead of panics.
package costmodel

import (
	"fmt"
	"math/rand"
)

// Jitter draws from an explicitly seeded generator and reports misuse as
// an error.
func Jitter(r *rand.Rand, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("costmodel: n = %d", n)
	}
	return float64(r.Intn(n)), nil
}
