// This file extends the known-bad fixture to trip the v2 analyzers:
// errflow, hotalloc, goroutinepolicy and schemaconst.
package costmodel

// Schema tags the fixture output document.
const Schema = "hccmf-fixturebad/v1"

// saveState pretends to persist and can fail.
func saveState() error { return nil }

// Flush drops the error and leaks a goroutine.
func Flush() {
	saveState()
	go func() {}()
}

// Emit inlines the declared schema literal.
func Emit() string {
	return "hccmf-fixturebad/v1"
}

// Hot is annotated hot and allocates anyway.
//
// lint:hotpath
func Hot(n int) []int {
	return make([]int, n)
}
