// Package costmodel is a known-bad smoke fixture: its name places it in
// the simulated-platform set and it trips three analyzers at once.
package costmodel

import (
	"fmt"
	"math/rand"
	"time"
)

// Jitter reads the wall clock and the global generator, and panics on
// misuse — one finding per analyzer.
func Jitter(n int) time.Duration {
	if n <= 0 {
		panic(fmt.Sprintf("costmodel: n = %d", n))
	}
	start := time.Now()
	d := time.Duration(rand.Intn(n)) * time.Millisecond
	return time.Since(start) + d
}
