package main

import (
	"strings"
	"testing"
)

// The multichecker must report the known-bad fixture (exit 1, findings
// from every tripped analyzer on stdout) and pass the known-good one.
func TestVetReportsKnownBadFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"(simtime)", "(seededrand)", "(panicpolicy)", "time.Now", "rand.Intn", "panic in exported"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestVetPassesKnownGoodFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/good"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected findings on good fixture:\n%s", out.String())
	}
}

func TestVetListsAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"simtime", "seededrand", "panicpolicy", "raceguard"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}
}

func TestVetRejectsUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nope", "./testdata/good"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errb.String())
	}
}
