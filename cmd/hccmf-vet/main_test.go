package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hccmf/internal/lint"
)

// The multichecker must report the known-bad fixture (exit 1, findings
// from every tripped analyzer on stdout) and pass the known-good one.
func TestVetReportsKnownBadFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"(simtime)", "(seededrand)", "(panicpolicy)",
		"(errflow)", "(hotalloc)", "(goroutinepolicy)", "(schemaconst)",
		"time.Now", "rand.Intn", "panic in exported",
		"saveState returns an error", "not provably joined",
		"inline schema literal", "calls make",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestVetPassesKnownGoodFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/good"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected findings on good fixture:\n%s", out.String())
	}
}

func TestVetListsAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"simtime", "seededrand", "panicpolicy", "raceguard",
		"errflow", "hotalloc", "goroutinepolicy", "nilobs", "schemaconst",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}
}

func TestVetRejectsUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nope", "./testdata/good"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errb.String())
	}
}

// -json must emit a valid hccmf-vet/v1 document with per-analyzer counts.
func TestVetJSONDocument(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "./testdata/bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var doc lint.Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Schema != lint.VetSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, lint.VetSchema)
	}
	if doc.Fresh == 0 || len(doc.Findings) != doc.Fresh+doc.Baselined {
		t.Errorf("inconsistent counts: fresh=%d baselined=%d findings=%d",
			doc.Fresh, doc.Baselined, len(doc.Findings))
	}
	if doc.Counts["simtime"] == 0 || doc.Counts["errflow"] == 0 {
		t.Errorf("per-analyzer counts missing tripped analyzers: %v", doc.Counts)
	}
	if doc.Counts["nilobs"] != 0 {
		t.Errorf("clean analyzer nilobs should count 0, got %d", doc.Counts["nilobs"])
	}
}

// The ratchet: a baseline recording the bad fixture's findings turns the
// run green; removing one entry makes that finding fresh again.
func TestVetBaselineRatchet(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "lint.baseline")

	var out, errb strings.Builder
	if code := run([]string{"-write-baseline", baseline, "./testdata/bad"}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline exit = %d; stderr: %s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", baseline, "./testdata/bad"}, &out, &errb); code != 0 {
		t.Fatalf("fully baselined run exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[baselined]") {
		t.Errorf("baselined findings not marked in text output:\n%s", out.String())
	}

	// Drop one baseline line: that finding is fresh again and fails.
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	kept := lines[:0]
	dropped := false
	for _, l := range lines {
		if !dropped && strings.HasPrefix(l, "simtime\t") {
			dropped = true
			continue
		}
		kept = append(kept, l)
	}
	if !dropped {
		t.Fatalf("no simtime entry to drop in baseline:\n%s", data)
	}
	if err := os.WriteFile(baseline, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", baseline, "./testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("shrunk baseline exit = %d, want 1", code)
	}
}

// A malformed baseline is a usage error, not a silent pass.
func TestVetRejectsMalformedBaseline(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "lint.baseline")
	if err := os.WriteFile(baseline, []byte("not a tabbed line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-baseline", baseline, "./testdata/good"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
}

// -summary prints per-analyzer counts to stderr.
func TestVetSummary(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-summary", "./testdata/bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "hccmf-vet summary:") {
		t.Errorf("stderr missing summary header: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "simtime") {
		t.Errorf("summary missing per-analyzer line: %s", errb.String())
	}
}
