// Command hccmf-vet runs HCC-MF's custom analyzer suite (internal/lint)
// over the given packages, in the shape of a x/tools multichecker:
//
//	hccmf-vet ./...
//	hccmf-vet -list
//	hccmf-vet -run simtime,seededrand ./internal/comm
//	hccmf-vet -baseline lint.baseline -json -summary ./... > vet.json
//	hccmf-vet -write-baseline lint.baseline ./...
//
// The suite mechanically enforces the reproduction's determinism,
// allocation and concurrency invariants — see internal/lint's package doc
// for the full analyzer roster. The whole module is loaded as one unit,
// so analyzers follow calls across package boundaries; files that fail to
// parse surface as findings of the pseudo-analyzer "load" instead of
// aborting the run.
//
// With -baseline, the committed baseline file acts as a ratchet:
// findings recorded there are tolerated (reported, tagged baselined in
// -json output, exit 0); any finding NOT in the baseline fails the run.
// -write-baseline regenerates the file from the current tree.
//
// Exit status 1 when any non-baselined finding is reported, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"hccmf/internal/lint"
	"hccmf/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main separated from os.Exit so the smoke tests can drive the
// full multichecker in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hccmf-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit the hccmf-vet/v1 JSON document on stdout instead of text findings")
	baselinePath := fs.String("baseline", "", "baseline file; recorded findings are tolerated, new ones fail")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this baseline file and exit")
	summary := fs.Bool("summary", false, "print a per-analyzer finding count summary to stderr")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "hccmf-vet", version.String())
		return 0
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "hccmf-vet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "hccmf-vet: %v\n", err)
		return 2
	}
	diags, err := lint.Run(mod, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "hccmf-vet: %v\n", err)
		return 2
	}

	if *writeBaseline != "" {
		content := lint.FormatBaseline(diags)
		if err := os.WriteFile(*writeBaseline, []byte(content), 0o644); err != nil {
			fmt.Fprintf(stderr, "hccmf-vet: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "hccmf-vet: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	fresh, baselined := diags, []lint.Diagnostic(nil)
	if *baselinePath != "" {
		bf, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "hccmf-vet: %v\n", err)
			return 2
		}
		base, err := lint.ParseBaseline(bf)
		bf.Close()
		if err != nil {
			fmt.Fprintf(stderr, "hccmf-vet: %s: %v\n", *baselinePath, err)
			return 2
		}
		fresh, baselined = base.Filter(diags)
	}

	doc := lint.NewDocument(analyzers, fresh, baselined)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(stderr, "hccmf-vet: encoding document: %v\n", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d)
		}
		for _, d := range baselined {
			fmt.Fprintf(stdout, "%s [baselined]\n", d)
		}
	}
	if *summary {
		printSummary(stderr, doc)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(stderr, "hccmf-vet: %d finding(s)", len(fresh))
		if len(baselined) > 0 {
			fmt.Fprintf(stderr, " (+%d baselined)", len(baselined))
		}
		fmt.Fprintln(stderr)
		return 1
	}
	return 0
}

// printSummary renders the per-analyzer finding counts, analyzers with
// zero findings included — a clean analyzer is information too.
func printSummary(w io.Writer, doc *lint.Document) {
	names := make([]string, 0, len(doc.Counts))
	for name := range doc.Counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "hccmf-vet summary: %d finding(s), %d fresh, %d baselined\n", doc.Fresh+doc.Baselined, doc.Fresh, doc.Baselined)
	for _, name := range names {
		fmt.Fprintf(w, "  %-15s %d\n", name, doc.Counts[name])
	}
}
