// Command hccmf-vet runs HCC-MF's custom analyzer suite (internal/lint)
// over the given packages, in the shape of a x/tools multichecker:
//
//	hccmf-vet ./...
//	hccmf-vet -list
//	hccmf-vet -run simtime,seededrand ./internal/comm
//
// The suite mechanically enforces the reproduction's determinism
// invariants: no wall clock in simulated-platform packages (simtime), no
// global math/rand in library code (seededrand), no undocumented panics
// in exported API (panicpolicy), and Hogwild races quarantined behind
// raceflag (raceguard). Exit status 1 when any analyzer reports a
// finding, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hccmf/internal/lint"
	"hccmf/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main separated from os.Exit so the smoke tests can drive the
// full multichecker in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hccmf-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "hccmf-vet", version.String())
		return 0
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "hccmf-vet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "hccmf-vet: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "hccmf-vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hccmf-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
