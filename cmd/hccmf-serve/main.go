// Command hccmf-serve is the model-serving daemon: it loads a factor model
// trained by hccmf-train (or builds a seeded synthetic one) and answers
// top-N recommendation queries over HTTP from an in-memory
// recommend.Service — sharded scoring on a persistent worker pool, bounded
// heaps in pooled buffers, and atomic hot model reload.
//
// Endpoints:
//
//	GET  /topn?user=U&n=N   top-N for one user
//	POST /topn              {"users":[...],"n":N} batch top-N
//	POST /reload            {"model":"path"} atomic hot model swap
//	GET  /healthz           liveness + model generation
//	GET  /metrics           obs registry in text form
//
// Usage:
//
//	hccmf-train -preset netflix -scale 0.01 -save model.bin
//	hccmf-serve -model model.bin -ratings ratings.txt -addr :8080
//	hccmf-serve -synthetic 2000x1000x32 -addr 127.0.0.1:0 -ready-file addr.txt
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"time"

	"hccmf/internal/dataset"
	"hccmf/internal/mf"
	"hccmf/internal/obs"
	"hccmf/internal/recommend"
	"hccmf/internal/sparse"
	"hccmf/internal/version"
)

func main() {
	modelPath := flag.String("model", "", "trained model file (from hccmf-train -save)")
	synthetic := flag.String("synthetic", "", "serve a seeded synthetic model of shape MxNxK (e.g. 2000x1000x32) instead of -model")
	seed := flag.Uint64("seed", 1, "random seed for -synthetic factors")
	ratingsPath := flag.String("ratings", "", "ratings file (text or binary) for seen-item exclusion")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; see -ready-file)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scoring pool size")
	shards := flag.Int("shards", 0, "item shards per single-user query (default: workers)")
	maxN := flag.Int("max-n", 100, "per-request n cap (sizes the preallocated heaps)")
	maxBatch := flag.Int("max-batch", 256, "users per batch request cap")
	readyFile := flag.String("ready-file", "", "write the actual listen address to this file once serving")
	metricsOut := flag.String("metrics-out", "", "write an hccmf-obs/v1 metrics JSON document here on shutdown")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON document here on shutdown")
	ioWorkers := flag.Int("io-workers", runtime.GOMAXPROCS(0), "parser workers for -ratings loading")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("hccmf-serve", version.String())
		return
	}

	model, err := loadServeModel(*modelPath, *synthetic, *seed)
	if err != nil {
		fatal(err)
	}
	svc, err := recommend.NewService(model, model.M, model.N, recommend.ServiceConfig{
		Workers: *workers, Shards: *shards, MaxN: *maxN,
	})
	if err != nil {
		fatal(err)
	}
	if *ratingsPath != "" {
		ratings, err := dataset.ReadRatingsFile(*ratingsPath, *ioWorkers)
		if err != nil {
			fatal(err)
		}
		if ratings.Rows != model.M || ratings.Cols != model.N {
			fatal(fmt.Errorf("ratings %dx%d do not match model %dx%d",
				ratings.Rows, ratings.Cols, model.M, model.N))
		}
		if err := svc.MarkSeen(ratings); err != nil {
			fatal(err)
		}
	}

	observer := obs.NewObserver(0, nil)
	srv := newServer(svc, observer, *maxBatch)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "hccmf-serve: %d users × %d items, k=%d, serving on %s (workers=%d, max-n=%d)\n",
		model.M, model.N, model.K, ln.Addr(), *workers, svc.MaxN())

	httpSrv := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "hccmf-serve: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hccmf-serve: shutdown:", err)
		}
		cancel()
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
	svc.Close()

	if *metricsOut != "" {
		if err := observer.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hccmf-serve: metrics written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := observer.WriteTraceFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hccmf-serve: trace written to %s\n", *traceOut)
	}
}

// loadServeModel resolves the startup model: a saved factor file or a
// seeded synthetic MxNxK (for smoke tests and load benches that should
// not depend on a training run).
func loadServeModel(modelPath, synthetic string, seed uint64) (*mf.Factors, error) {
	switch {
	case modelPath != "" && synthetic != "":
		return nil, fmt.Errorf("-model and -synthetic are mutually exclusive")
	case modelPath != "":
		return readModelFile(modelPath)
	case synthetic != "":
		var m, n, k int
		if _, err := fmt.Sscanf(synthetic, "%dx%dx%d", &m, &n, &k); err != nil {
			return nil, fmt.Errorf("-synthetic %q: want MxNxK (e.g. 2000x1000x32)", synthetic)
		}
		if m <= 0 || n <= 0 || k <= 0 {
			return nil, fmt.Errorf("-synthetic %q: dims must be positive", synthetic)
		}
		return mf.NewFactorsInit(m, n, k, 3.5, sparse.NewRand(seed)), nil
	default:
		return nil, fmt.Errorf("one of -model or -synthetic is required")
	}
}

func readModelFile(path string) (*mf.Factors, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	model, err := mf.ReadFactors(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return model, nil
}

// server is the HTTP layer over a recommend.Service; split from main so
// tests drive it through httptest without sockets or signals.
type server struct {
	svc      *recommend.Service
	obs      *obs.Observer
	metrics  *obs.ServeMetrics
	maxBatch int
	mux      *http.ServeMux
	bufs     sync.Pool // *queryBuf
	// loadModel resolves a /reload path to factors (stubbed in tests).
	loadModel func(path string) (*mf.Factors, error)
	// reloadMu serialises reloads: the swap itself is atomic, but two
	// concurrent reloads interleaving file reads and generation bumps
	// would make the reported generations ambiguous.
	reloadMu sync.Mutex
}

// queryBuf is the pooled per-request result storage: a single-user buffer
// and batch rows, all at MaxN capacity so the scoring path stays 0-alloc.
type queryBuf struct {
	single []recommend.Item
	rows   [][]recommend.Item
}

func newServer(svc *recommend.Service, observer *obs.Observer, maxBatch int) *server {
	if maxBatch <= 0 {
		maxBatch = 256
	}
	s := &server{
		svc:      svc,
		obs:      observer,
		maxBatch: maxBatch,
		mux:      http.NewServeMux(),
		loadModel: func(path string) (*mf.Factors, error) {
			return readModelFile(path)
		},
	}
	if observer != nil {
		s.metrics = obs.NewServeMetrics(observer.Registry).WithClock(obs.WallClock())
	}
	maxN := svc.MaxN()
	s.bufs.New = func() any {
		b := &queryBuf{
			single: make([]recommend.Item, 0, maxN),
			rows:   make([][]recommend.Item, maxBatch),
		}
		for i := range b.rows {
			b.rows[i] = make([]recommend.Item, 0, maxN)
		}
		return b
	}
	s.mux.HandleFunc("/topn", s.handleTopN)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// topNResponse is the GET /topn body.
type topNResponse struct {
	User       int32            `json:"user"`
	N          int              `json:"n"`
	Generation int64            `json:"generation"`
	Items      []recommend.Item `json:"items"`
}

// batchRequest and batchResponse are the POST /topn bodies.
type batchRequest struct {
	Users []int32 `json:"users"`
	N     int     `json:"n"`
}

type batchResponse struct {
	N          int            `json:"n"`
	Generation int64          `json:"generation"`
	Results    []topNResponse `json:"results"`
}

func (s *server) handleTopN(w http.ResponseWriter, r *http.Request) {
	start := s.metrics.RequestStart()
	switch r.Method {
	case http.MethodGet:
		s.topNSingle(w, r, start)
	case http.MethodPost:
		s.topNBatch(w, r, start)
	default:
		s.fail(w, start, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
	}
}

func (s *server) topNSingle(w http.ResponseWriter, r *http.Request, start float64) {
	user, err := strconv.ParseInt(r.URL.Query().Get("user"), 10, 32)
	if err != nil {
		s.fail(w, start, http.StatusBadRequest, fmt.Errorf("user: %w", err))
		return
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		if n, err = strconv.Atoi(raw); err != nil {
			s.fail(w, start, http.StatusBadRequest, fmt.Errorf("n: %w", err))
			return
		}
	}
	buf := s.bufs.Get().(*queryBuf)
	defer s.bufs.Put(buf)
	gen := s.svc.Generation()
	items, err := s.svc.TopNInto(int32(user), n, buf.single)
	if err != nil {
		s.fail(w, start, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, topNResponse{User: int32(user), N: n, Generation: gen, Items: items})
	s.metrics.RequestDone(start, 1, false)
}

func (s *server) topNBatch(w http.ResponseWriter, r *http.Request, start float64) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, start, http.StatusBadRequest, fmt.Errorf("body: %w", err))
		return
	}
	if len(req.Users) == 0 {
		s.fail(w, start, http.StatusBadRequest, fmt.Errorf("empty users"))
		return
	}
	if len(req.Users) > s.maxBatch {
		s.fail(w, start, http.StatusBadRequest,
			fmt.Errorf("batch of %d users exceeds the cap %d", len(req.Users), s.maxBatch))
		return
	}
	if req.N == 0 {
		req.N = 10
	}
	buf := s.bufs.Get().(*queryBuf)
	defer s.bufs.Put(buf)
	gen := s.svc.Generation()
	if err := s.svc.TopNBatch(req.Users, req.N, buf.rows); err != nil {
		s.fail(w, start, http.StatusBadRequest, err)
		return
	}
	resp := batchResponse{N: req.N, Generation: gen, Results: make([]topNResponse, len(req.Users))}
	for i, u := range req.Users {
		resp.Results[i] = topNResponse{User: u, N: req.N, Generation: gen, Items: buf.rows[i]}
	}
	s.writeJSON(w, resp)
	s.metrics.RequestDone(start, len(req.Users), false)
}

// reloadRequest is the POST /reload body.
type reloadRequest struct {
	Model string `json:"model"`
}

type reloadResponse struct {
	Generation int64 `json:"generation"`
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Model == "" {
		http.Error(w, "model path required", http.StatusBadRequest)
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	model, err := s.loadModel(req.Model)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.svc.Reload(model, model.M, model.N); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	gen := s.svc.Generation()
	s.metrics.CountReload(gen)
	s.obs.Instant("serve", "reload", "serve", "reload", "generation", float64(gen))
	s.writeJSON(w, reloadResponse{Generation: gen})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "ok generation=%d users=%d items=%d\n",
		s.svc.Generation(), s.svc.Users(), s.svc.Items())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.obs.Registry.Format())
}

func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but note it.
		fmt.Fprintln(os.Stderr, "hccmf-serve: write:", err)
	}
}

func (s *server) fail(w http.ResponseWriter, start float64, code int, err error) {
	http.Error(w, err.Error(), code)
	s.metrics.RequestDone(start, 0, true)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hccmf-serve:", err)
	os.Exit(1)
}
