package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hccmf/internal/mf"
	"hccmf/internal/obs"
	"hccmf/internal/recommend"
	"hccmf/internal/sparse"
)

const (
	testUsers = 50
	testItems = 120
	testK     = 8
)

func newTestServer(t *testing.T) (*server, *mf.Factors, *httptest.Server) {
	t.Helper()
	model := mf.NewFactorsInit(testUsers, testItems, testK, 3.5, sparse.NewRand(3))
	svc, err := recommend.NewService(model, testUsers, testItems, recommend.ServiceConfig{MaxN: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := newServer(svc, obs.NewObserver(0, nil), 8)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, model, ts
}

func getTopN(t *testing.T, base string, user, n int) topNResponse {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/topn?user=%d&n=%d", base, user, n))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out topNResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTopNSingleMatchesReference(t *testing.T) {
	_, model, ts := newTestServer(t)
	ref, err := recommend.New(model, testUsers, testItems)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{0, 7, testUsers - 1} {
		out := getTopN(t, ts.URL, u, 10)
		want, err := ref.TopN(int32(u), 10)
		if err != nil {
			t.Fatal(err)
		}
		if out.User != int32(u) || out.Generation != 1 || len(out.Items) != len(want) {
			t.Fatalf("user %d: %+v", u, out)
		}
		for i := range want {
			if out.Items[i] != want[i] {
				t.Fatalf("user %d rank %d: got %+v want %+v", u, i, out.Items[i], want[i])
			}
		}
	}
}

func TestTopNBatchMatchesSingles(t *testing.T) {
	_, _, ts := newTestServer(t)
	users := []int32{4, 0, 31}
	body, _ := json.Marshal(batchRequest{Users: users, N: 5})
	resp, err := http.Post(ts.URL+"/topn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(users) {
		t.Fatalf("results: %+v", out)
	}
	for i, u := range users {
		single := getTopN(t, ts.URL, int(u), 5)
		if out.Results[i].User != u || len(out.Results[i].Items) != 5 {
			t.Fatalf("row %d: %+v", i, out.Results[i])
		}
		for j := range single.Items {
			if out.Results[i].Items[j] != single.Items[j] {
				t.Fatalf("user %d rank %d: batch %+v single %+v",
					u, j, out.Results[i].Items[j], single.Items[j])
			}
		}
	}
}

func TestRequestValidation(t *testing.T) {
	_, _, ts := newTestServer(t)
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		code int
	}{
		{"missing user", func() (*http.Response, error) {
			return http.Get(ts.URL + "/topn")
		}, http.StatusBadRequest},
		{"user out of range", func() (*http.Response, error) {
			return http.Get(ts.URL + "/topn?user=999")
		}, http.StatusBadRequest},
		{"n over cap", func() (*http.Response, error) {
			return http.Get(ts.URL + "/topn?user=0&n=21")
		}, http.StatusBadRequest},
		{"empty batch", func() (*http.Response, error) {
			return http.Post(ts.URL+"/topn", "application/json", strings.NewReader(`{"users":[]}`))
		}, http.StatusBadRequest},
		{"batch over cap", func() (*http.Response, error) {
			return http.Post(ts.URL+"/topn", "application/json",
				strings.NewReader(`{"users":[0,1,2,3,4,5,6,7,8],"n":5}`))
		}, http.StatusBadRequest},
		{"batch user out of range", func() (*http.Response, error) {
			return http.Post(ts.URL+"/topn", "application/json",
				strings.NewReader(`{"users":[0,999],"n":5}`))
		}, http.StatusBadRequest},
		{"bad method", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/topn", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
		{"reload without body", func() (*http.Response, error) {
			return http.Post(ts.URL+"/reload", "application/json", strings.NewReader(`{}`))
		}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}
	// The batch-user error names the offender.
	resp, err := http.Post(ts.URL+"/topn", "application/json",
		strings.NewReader(`{"users":[0,999],"n":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var msg bytes.Buffer
	msg.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(msg.String(), "user 999") {
		t.Fatalf("batch error %q does not name the user", msg.String())
	}
}

func TestReloadSwapsModelAtomically(t *testing.T) {
	srv, model, ts := newTestServer(t)
	before := getTopN(t, ts.URL, 2, 5)

	doubled := model.Clone()
	for i := range doubled.P {
		doubled.P[i] *= 2
	}
	srv.loadModel = func(path string) (*mf.Factors, error) {
		if path != "new.bin" {
			return nil, fmt.Errorf("unexpected path %q", path)
		}
		return doubled, nil
	}
	resp, err := http.Post(ts.URL+"/reload", "application/json", strings.NewReader(`{"model":"new.bin"}`))
	if err != nil {
		t.Fatal(err)
	}
	var rl reloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rl.Generation != 2 {
		t.Fatalf("generation = %d, want 2", rl.Generation)
	}

	after := getTopN(t, ts.URL, 2, 5)
	if after.Generation != 2 {
		t.Fatalf("post-reload generation = %d", after.Generation)
	}
	// Doubling P doubles every score; the ranking is unchanged.
	for i := range before.Items {
		if after.Items[i].ID != before.Items[i].ID {
			t.Fatalf("rank %d: id %d -> %d", i, before.Items[i].ID, after.Items[i].ID)
		}
		if after.Items[i].Score <= before.Items[i].Score {
			t.Fatalf("rank %d: score did not grow: %v -> %v",
				i, before.Items[i].Score, after.Items[i].Score)
		}
	}

	// A model of different shape is rejected and the generation holds.
	srv.loadModel = func(string) (*mf.Factors, error) {
		return mf.NewFactorsInit(3, 3, 2, 3.5, sparse.NewRand(1)), nil
	}
	resp, err = http.Post(ts.URL+"/reload", "application/json", strings.NewReader(`{"model":"new.bin"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("dim-mismatch reload status %d, want 409", resp.StatusCode)
	}
	if g := getTopN(t, ts.URL, 2, 5).Generation; g != 2 {
		t.Fatalf("generation moved to %d after failed reload", g)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, _, ts := newTestServer(t)
	getTopN(t, ts.URL, 0, 5) // generate one sample

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "generation=1") {
		t.Fatalf("healthz: %q", body.String())
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body.Reset()
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	// The text format pads columns; compare with collapsed whitespace.
	flat := strings.Join(strings.Fields(body.String()), " ")
	for _, want := range []string{"serve/requests_total 1", "serve/users_scored_total 1", "serve/request_seconds count 1"} {
		if !strings.Contains(flat, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body.String())
		}
	}
}

func TestLoadServeModel(t *testing.T) {
	if _, err := loadServeModel("", "", 1); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadServeModel("a", "1x1x1", 1); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadServeModel("", "abc", 1); err == nil {
		t.Fatal("bad shape accepted")
	}
	if _, err := loadServeModel("", "0x5x5", 1); err == nil {
		t.Fatal("zero dim accepted")
	}
	m, err := loadServeModel("", "12x9x4", 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.M != 12 || m.N != 9 || m.K != 4 {
		t.Fatalf("shape %dx%dx%d", m.M, m.N, m.K)
	}
	// Same seed, same factors: the synthetic model is reproducible.
	m2, _ := loadServeModel("", "12x9x4", 7)
	for i := range m.P {
		if m.P[i] != m2.P[i] {
			t.Fatal("synthetic model not seeded")
		}
	}
}
