module hccmf

go 1.22
